"""Parallel sweep execution.

The paper's methodology is embarrassingly parallel: one traced run is
replayed on many configurable platforms (bandwidths x patterns x mechanisms
x applications), and every replay is independent of the others.  The
:class:`SweepExecutor` exploits that:

1. a sweep is *expanded* into self-contained :class:`SweepTask` units, one
   per (trace variant, platform point) pair;
2. the tasks are *executed* either serially in-process (``jobs=1``, the
   default, so a plain sweep stays deterministic and dependency-free) or
   fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`;
3. the per-task results are *merged* back deterministically, grouped by
   platform point and sorted in bandwidth order, so a parallel sweep is
   bit-identical to the serial one.

Variant traces are transformed once in the parent process, serialised once
(:meth:`Trace.to_dict`) and shipped to every worker at pool start-up via the
pool initializer; each worker deserialises a variant at most once and caches
the :class:`Trace` for all the tasks it runs.  Tasks therefore only carry a
key into the variant table, which keeps the per-task pickling cost constant
regardless of the trace size.
"""

from __future__ import annotations

import inspect
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from repro.core.analysis import ORIGINAL, SweepPoint
from repro.dimemas.gridreplay import replay_cohort
from repro.dimemas.platform import Platform
from repro.dimemas.results import SimulationResult
from repro.dimemas.simulator import DimemasSimulator
from repro.dimemas.windows import export_facts, seed_facts
from repro.errors import AnalysisError, ConfigurationError
from repro.store.serde import payload_of
from repro.tracing.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.base import ResultStore
    from repro.store.keys import CellKey


def validate_variant_labels(labels: Iterable[str]) -> List[str]:
    """Reject duplicate variant labels and collisions with ``original``.

    Both sweep drivers key their variant traces by label; a duplicate label
    (or a label equal to the reserved :data:`ORIGINAL`) would silently
    clobber an earlier variant and corrupt the sweep.
    """
    seen: List[str] = []
    for label in labels:
        if label == ORIGINAL:
            raise AnalysisError(
                f"variant label {label!r} collides with the reserved "
                f"label of the non-overlapped execution")
        if label in seen:
            raise AnalysisError(f"duplicate variant label {label!r} in sweep")
        seen.append(label)
    return seen


@dataclass(frozen=True)
class SweepTask:
    """One self-contained replay unit: one trace variant on one platform.

    ``point`` is the ordinal of the platform point within the sweep grid;
    :meth:`SweepExecutor.merge` groups by it, so two grid points that happen
    to share a bandwidth value stay separate sweep rows.

    ``collect_timeline`` selects the timeline recorder for metric-only
    replays: sweeps discard timelines, so it defaults off and the replay
    skips the recording cost entirely (the scalar metrics are
    bit-identical).  Full-result executions (studies) always record.
    """

    index: int
    variant: str
    trace_key: str
    platform: Platform
    label: str
    point: int = 0
    collect_timeline: bool = False


@dataclass(frozen=True)
class CohortTask:
    """A batch of sweep tasks replayed together by the grid-vectorized path.

    Every member shares one trace variant and the structural platform axes
    (see :func:`repro.dimemas.gridreplay.cohort_signature`); only scalar
    axes like bandwidth, latency or CPU speed differ, so one vectorized
    walk evaluates all members at once.  Members keep their own indices,
    labels and cache keys: results split back out per cell, and
    write-through caching is indistinguishable from per-cell execution.
    Cohorts are metric-only -- full-result (timeline) replays never batch.
    """

    tasks: Tuple[SweepTask, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise AnalysisError("a cohort task needs at least one member")
        keys = {task.trace_key for task in self.tasks}
        if len(keys) > 1:
            raise AnalysisError(
                f"cohort members must share one trace variant, got {keys}")

    @property
    def trace_key(self) -> str:
        return self.tasks[0].trace_key

    @property
    def width(self) -> int:
        return len(self.tasks)


@dataclass(frozen=True)
class SweepTaskResult:
    """Scalar metrics of one replayed task (cheap to ship across processes)."""

    index: int
    variant: str
    bandwidth_mbps: float
    total_time: float
    communication_fraction: float
    max_compute_time: float
    elapsed_seconds: float
    worker_pid: int
    point: int = 0
    topology: str = "flat"
    collective_model: str = "analytical"
    transfers: int = 0
    bytes_transferred: int = 0
    mean_queue_time: float = 0.0
    mean_transfer_time: float = 0.0
    intranode_share: float = 0.0
    collective_transfers: int = 0
    collective_bytes: int = 0
    collective_share: float = 0.0

    def network_summary(self) -> Dict[str, float]:
        """The network counters this task carries, keyed like the fabric's."""
        return {
            "transfers": self.transfers,
            "bytes_transferred": self.bytes_transferred,
            "mean_queue_time": self.mean_queue_time,
            "mean_transfer_time": self.mean_transfer_time,
            "intranode_share": self.intranode_share,
            "collective_transfers": self.collective_transfers,
            "collective_bytes": self.collective_bytes,
            "collective_share": self.collective_share,
        }


# -- task execution (both sides) ----------------------------------------------

# Custom simulators predate the collect_timeline kwarg and only promise
# ``simulate(trace, platform=..., label=...)``; probe whether a simulator
# accepts the recorder toggle before passing it.  The result is cached per
# underlying ``simulate`` callable (one entry per class for ordinary
# methods, one per callable for instance-attribute simulate functions), so
# two instances never share a wrong answer.
_COLLECT_KWARG_SUPPORT: Dict[Any, bool] = {}


def _supports_collect_timeline(simulator: DimemasSimulator) -> bool:
    simulate = getattr(simulator, "simulate", None)
    probe_key = getattr(simulate, "__func__", simulate)
    supported = _COLLECT_KWARG_SUPPORT.get(probe_key)
    if supported is None:
        try:
            parameters = inspect.signature(simulate).parameters
            supported = ("collect_timeline" in parameters
                         or any(parameter.kind is parameter.VAR_KEYWORD
                                for parameter in parameters.values()))
        except (TypeError, ValueError):
            supported = False
        _COLLECT_KWARG_SUPPORT[probe_key] = supported
    return supported


def _simulate(task: SweepTask, trace: Trace,
              simulator: Optional[DimemasSimulator],
              collect_timeline: bool) -> SimulationResult:
    """Replay one task, honouring a custom simulator when one is supplied."""
    simulator = simulator or DimemasSimulator(task.platform)
    if _supports_collect_timeline(simulator):
        return simulator.simulate(trace, platform=task.platform,
                                  label=task.label,
                                  collect_timeline=collect_timeline)
    return simulator.simulate(trace, platform=task.platform, label=task.label)


def _replay(task: SweepTask, trace: Trace,
            simulator: Optional[DimemasSimulator]) -> SimulationResult:
    """Full-result replay: shipped results carry timelines by contract."""
    return _simulate(task, trace, simulator, collect_timeline=True)


def _task_result(task: SweepTask, result: SimulationResult,
                 elapsed_seconds: float) -> SweepTaskResult:
    """The scalar metrics of one finished task (shared by both paths)."""
    network = result.network
    return SweepTaskResult(
        index=task.index,
        variant=task.variant,
        bandwidth_mbps=task.platform.bandwidth_mbps,
        total_time=result.total_time,
        communication_fraction=result.communication_fraction(),
        max_compute_time=result.max_compute_time(),
        elapsed_seconds=elapsed_seconds,
        worker_pid=os.getpid(),
        point=task.point,
        topology=task.platform.topology.kind,
        collective_model=task.platform.collective_model.to_string(),
        transfers=network.get("transfers", 0),
        bytes_transferred=network.get("bytes_transferred", 0),
        mean_queue_time=network.get("mean_queue_time", 0.0),
        mean_transfer_time=network.get("mean_transfer_time", 0.0),
        intranode_share=network.get("intranode_share", 0.0),
        collective_transfers=network.get("collective_transfers", 0),
        collective_bytes=network.get("collective_bytes", 0),
        collective_share=network.get("collective_share", 0.0))


def _metrics(task: SweepTask, trace: Trace,
             simulator: Optional[DimemasSimulator]) -> SweepTaskResult:
    start = time.perf_counter()
    result = _simulate(task, trace, simulator,
                       collect_timeline=task.collect_timeline)
    return _task_result(task, result, time.perf_counter() - start)


def _run_cohort(cohort: CohortTask, trace: Trace) -> List[SweepTaskResult]:
    """Replay one cohort batch; the batch wall time is apportioned evenly.

    Per-cell ``elapsed_seconds`` cannot be attributed exactly (the point of
    the batch is that the cells share one walk), so each member reports the
    batch time divided by the width -- the aggregate sweep timing stays
    truthful and cached rows keep a meaningful per-cell cost.
    """
    tasks = cohort.tasks
    start = time.perf_counter()
    results = replay_cohort(trace, [task.platform for task in tasks],
                            [task.label for task in tasks])
    elapsed = (time.perf_counter() - start) / len(tasks)
    return [_task_result(task, result, elapsed)
            for task, result in zip(tasks, results)]


def _lookup_trace(traces: Dict[str, Any], key: str) -> Any:
    try:
        return traces[key]
    except KeyError:
        raise AnalysisError(
            f"task references unknown trace variant {key!r}") from None


# -- worker side --------------------------------------------------------------
# The serialised variant table (and the optional custom simulator) is
# installed once per worker process through the pool initializer, so it is
# pickled once per worker rather than once per task; tasks reference it by
# key, and each worker deserialises a variant at most once.  The serial path
# never touches these globals, so in-process execution is reentrant.

_TRACE_TABLE: Dict[str, Dict[str, Any]] = {}
_TRACE_CACHE: Dict[str, Trace] = {}
_TRACE_DIGESTS: Dict[str, str] = {}
_SIMULATOR: Optional[DimemasSimulator] = None
_STORE: Optional["ResultStore"] = None
_CACHE_KEYS: Dict[int, "CellKey"] = {}


def _init_worker(table: Dict[str, Dict[str, Any]],
                 simulator: Optional[DimemasSimulator] = None,
                 store: Optional["ResultStore"] = None,
                 cache_keys: Optional[Dict[int, "CellKey"]] = None,
                 digests: Optional[Dict[str, str]] = None,
                 facts: Optional[List[Tuple[Any, ...]]] = None) -> None:
    global _TRACE_TABLE, _TRACE_CACHE, _TRACE_DIGESTS
    global _SIMULATOR, _STORE, _CACHE_KEYS
    _TRACE_TABLE = table
    _TRACE_CACHE = {}
    _TRACE_DIGESTS = digests or {}
    _SIMULATOR = simulator
    _STORE = store
    _CACHE_KEYS = cache_keys or {}
    if facts:
        # Window-classification facts the parent already proved, keyed by
        # content digest: seeding them means no worker re-runs the
        # symbolic matchability proof for a trace the parent classified.
        seed_facts(facts)


def _worker_trace(key: str) -> Trace:
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        serialized = _lookup_trace(_TRACE_TABLE, key)
        trace = Trace.from_dict(serialized)
        # Adopt the content digest the parent already computed (store-backed
        # runs ship it): preparation is then shared by content, so a worker
        # that sees the same trace content again -- under another variant
        # key or across resumed sweeps -- never recompiles it.
        digest = _TRACE_DIGESTS.get(key)
        if digest is not None:
            trace.adopt_digest(digest)
        # Normalise once per worker: every task this worker runs against the
        # variant reuses the prepared (opcode-tagged) record stream.
        trace.prepared()
        _TRACE_CACHE[key] = trace
    return trace


def _store_result(task: SweepTask, result: SweepTaskResult,
                  store: Optional["ResultStore"],
                  cache_keys: Dict[int, "CellKey"]) -> None:
    """Write one finished task back through the result store (if keyed).

    Results are persisted the moment they exist -- in the worker process,
    before anything is shipped back -- so an interrupted sweep keeps every
    completed cell and a re-run only replays the unfinished ones.
    """
    if store is None:
        return
    key = cache_keys.get(task.index)
    if key is not None:
        store.put(key, payload_of(result))


def _run_task_full(task: SweepTask) -> SimulationResult:
    return _replay(task, _worker_trace(task.trace_key), _SIMULATOR)


def _run_task_metrics(task: SweepTask) -> SweepTaskResult:
    result = _metrics(task, _worker_trace(task.trace_key), _SIMULATOR)
    _store_result(task, result, _STORE, _CACHE_KEYS)
    return result


def _run_cohort_metrics(cohort: CohortTask) -> List[SweepTaskResult]:
    results = _run_cohort(cohort, _worker_trace(cohort.trace_key))
    for task, result in zip(cohort.tasks, results):
        _store_result(task, result, _STORE, _CACHE_KEYS)
    return results


def _run_unit_metrics(unit: Union[SweepTask, "CohortTask"]
                      ) -> List[SweepTaskResult]:
    """Pool worker for mixed task/cohort streams: always returns a batch."""
    if type(unit) is CohortTask:
        return _run_cohort_metrics(unit)
    return [_run_task_metrics(unit)]


class SweepExecutor:
    """Executes sweep tasks serially or on a multi-process worker pool.

    ``jobs=1`` (the default) replays every task in-process, preserving the
    behaviour of the original serial drivers; ``jobs=N`` fans the tasks out
    over ``N`` worker processes; ``jobs=0`` uses every available core.
    """

    def __init__(self, jobs: Optional[int] = None):
        if jobs is None:
            jobs = 1
        elif jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigurationError(
                f"jobs must be >= 1 (or 0 for all cores), got {jobs!r}")
        self.jobs = int(jobs)

    # -- expansion ---------------------------------------------------------
    @staticmethod
    def expand(variants: Dict[str, Trace], platforms: Sequence[Platform],
               app_name: str = "trace") -> List[SweepTask]:
        """Expand a variant x platform grid into self-contained tasks.

        Expanded tasks are metric-only and run timeline-free (the
        :class:`SweepTask` default); callers that need recorded timelines
        execute with ``full_results`` or build tasks with
        ``collect_timeline=True`` themselves.
        """
        tasks: List[SweepTask] = []
        for point, platform in enumerate(platforms):
            for variant in variants:
                label = f"{app_name}:{variant}@{platform.bandwidth_mbps}MBps"
                if platform.topology.kind != "flat":
                    label += f"/{platform.topology.kind}"
                if platform.collective_model.kind != "analytical":
                    label += f"/{platform.collective_model.kind}"
                tasks.append(SweepTask(
                    index=len(tasks),
                    variant=variant,
                    trace_key=variant,
                    platform=platform,
                    label=label,
                    point=point))
        return tasks

    # -- execution ---------------------------------------------------------
    def execute(self, tasks: Sequence[Union[SweepTask, CohortTask]],
                traces: Dict[str, Trace],
                full_results: bool = False,
                simulator: Optional[DimemasSimulator] = None,
                store: Optional["ResultStore"] = None,
                cache_keys: Optional[Dict[int, "CellKey"]] = None
                ) -> Union[List[SweepTaskResult], List[SimulationResult]]:
        """Run every task and return the results in task order.

        With ``full_results`` the workers ship back whole
        :class:`SimulationResult` objects (timelines included) instead of the
        scalar :class:`SweepTaskResult` metrics; batch studies need the
        former, bandwidth sweeps only the latter.  ``simulator`` replays the
        tasks through a caller-supplied (picklable) simulator instead of a
        fresh :class:`DimemasSimulator` per task.

        ``store`` plus ``cache_keys`` (task index -> :class:`CellKey`)
        enables write-through: every finished metric result is persisted by
        the process that computed it, immediately, which is what makes
        interrupted sweeps resumable.  Full-result replays are never written
        through (timelines are not cached).

        The sequence may mix :class:`SweepTask` units with
        :class:`CohortTask` batches (metric mode only).  When it does, the
        flattened per-cell results come back sorted by task index -- batch
        execution order is a scheduling detail, never an output order --
        and parallel runs submit units largest-first (estimated trace
        records x cohort width) so one fat batch cannot serialize the tail
        of the sweep.
        """
        cache_keys = cache_keys or {}
        if full_results:
            store = None
        units = list(tasks)
        cohorts_present = any(type(unit) is CohortTask for unit in units)
        if cohorts_present:
            if full_results:
                raise AnalysisError(
                    "cohort batch tasks are metric-only; expand them into "
                    "per-cell tasks for full results")
            if simulator is not None and type(simulator) is not DimemasSimulator:
                raise AnalysisError(
                    "cohort batch tasks replay through the stock simulator; "
                    "custom simulators need per-cell tasks")
        flat_tasks: List[SweepTask] = []
        for unit in units:
            if type(unit) is CohortTask:
                flat_tasks.extend(unit.tasks)
            else:
                flat_tasks.append(unit)
        if self.jobs == 1 or len(units) <= 1:
            # Warm the preparation cache up front so the first task of a
            # variant is not charged for the normalisation of all of them.
            # Store-backed runs hash the content first: the digest-keyed
            # memo then shares one compiled stream across every Trace
            # object with equal content, so a resumed or repeated sweep in
            # the same process never recompiles a trace it has seen.
            for task in flat_tasks:
                trace = _lookup_trace(traces, task.trace_key)
                if store is not None:
                    trace.digest()
                trace.prepared()
            results: List[Any] = []
            for unit in units:
                if type(unit) is CohortTask:
                    batch = _run_cohort(
                        unit, _lookup_trace(traces, unit.trace_key))
                    for task, result in zip(unit.tasks, batch):
                        _store_result(task, result, store, cache_keys)
                    results.extend(batch)
                elif full_results:
                    results.append(_replay(
                        unit, _lookup_trace(traces, unit.trace_key),
                        simulator))
                else:
                    result = _metrics(
                        unit, _lookup_trace(traces, unit.trace_key),
                        simulator)
                    _store_result(unit, result, store, cache_keys)
                    results.append(result)
            if cohorts_present:
                results.sort(key=lambda result: result.index)
            return results
        table = {key: trace.to_dict() for key, trace in traces.items()}
        # Ship the window-classification facts the parent has (or can
        # cheaply re-derive from its memo) for every adaptive cell, so no
        # worker re-proves windows the parent already proved.  Facts are
        # digest-keyed, so shipping them requires shipping digests too.
        facts_rows: List[Tuple[Any, ...]] = []
        facts_seen = set()
        if not full_results:
            for task in flat_tasks:
                platform = task.platform
                if (platform.replay_backend != "adaptive"
                        or platform.cpu_contention):
                    continue
                fact_key = (task.trace_key, platform.eager_threshold,
                            platform.processors_per_node)
                if fact_key in facts_seen:
                    continue
                facts_seen.add(fact_key)
                trace = _lookup_trace(traces, task.trace_key)
                trace.digest()
                row = export_facts(trace, platform.eager_threshold,
                                   platform.processors_per_node)
                if row is not None:
                    facts_rows.append(row)
        digests = ({key: trace.digest() for key, trace in traces.items()}
                   if store is not None or facts_rows else None)
        initargs = (table, simulator, store, cache_keys, digests, facts_rows)
        if cohorts_present:
            sizes = {key: sum(len(rank_trace) for rank_trace in trace)
                     for key, trace in traces.items()}

            def _estimate(unit) -> int:
                records = sizes.get(unit.trace_key, 1)
                if type(unit) is CohortTask:
                    return records * unit.width
                return records

            def _first_index(unit) -> int:
                return (unit.tasks[0].index if type(unit) is CohortTask
                        else unit.index)

            ordered = sorted(units, key=lambda unit: (-_estimate(unit),
                                                      _first_index(unit)))
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(units)),
                                     initializer=_init_worker,
                                     initargs=initargs) as pool:
                results = [result
                           for batch in pool.map(_run_unit_metrics, ordered)
                           for result in batch]
            results.sort(key=lambda result: result.index)
            return results
        worker = _run_task_full if full_results else _run_task_metrics
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(units)),
                                 initializer=_init_worker,
                                 initargs=initargs) as pool:
            return list(pool.map(worker, units))

    # -- merging -----------------------------------------------------------
    @staticmethod
    def merge(results: Sequence[SweepTaskResult]) -> List[SweepPoint]:
        """Merge task metrics into sweep points, sorted in bandwidth order.

        Results are grouped by their grid-point ordinal (so duplicate
        bandwidth values stay separate rows) and the grouping only depends
        on task metadata, never on completion order, so serial and parallel
        executions merge identically.
        """
        grouped: Dict[int, List[SweepTaskResult]] = {}
        for result in sorted(results, key=lambda r: r.index):
            grouped.setdefault(result.point, []).append(result)
        points: List[SweepPoint] = []
        for group in grouped.values():
            original = next((r for r in group if r.variant == ORIGINAL), None)
            points.append(SweepPoint(
                bandwidth_mbps=group[0].bandwidth_mbps,
                times={r.variant: r.total_time for r in group},
                original_communication_fraction=(
                    original.communication_fraction if original else 0.0),
                original_compute_time=(
                    original.max_compute_time if original else 0.0),
                task_seconds={r.variant: r.elapsed_seconds for r in group},
                network={r.variant: r.network_summary() for r in group}))
        points.sort(key=lambda point: point.bandwidth_mbps)
        return points

    # -- convenience -------------------------------------------------------
    def run_sweep(self, variants: Dict[str, Trace], base_platform: Platform,
                  bandwidths_mbps: Sequence[float], app_name: str = "trace",
                  simulator: Optional[DimemasSimulator] = None
                  ) -> Tuple[List[SweepPoint], float]:
        """Replay every variant at every bandwidth and merge the results.

        Returns the bandwidth-ordered sweep points plus the wall-clock time
        of the replay section (the part the worker pool accelerates).
        """
        if ORIGINAL not in variants:
            raise AnalysisError(
                f"sweep variants must include the {ORIGINAL!r} trace")
        platforms = [base_platform.with_bandwidth(bandwidth)
                     for bandwidth in bandwidths_mbps]
        tasks = self.expand(variants, platforms, app_name=app_name)
        start = time.perf_counter()
        results = self.execute(tasks, variants, simulator=simulator)
        wall_seconds = time.perf_counter() - start
        return self.merge(results), wall_seconds
