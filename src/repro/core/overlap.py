"""The overlap trace transformation.

This module reproduces the central capability of the paper's tracing tool:
from the original (non-overlapped) annotated trace it generates the trace of
the *potential* (overlapped) execution.  Every original point-to-point
message is split into chunks; partial (non-blocking) sends are injected at
the points where the chunks are produced, and partial waits are injected at
the points where the chunks are consumed.  The points come either from the
measured (real) pattern annotations or from the ideal (linear) pattern.

The transformation is purely local to each rank.  Chunk messages of the two
sides stay matched because (a) the chunking policy is a deterministic
function of the message size and (b) the chunk tag is derived from the
original tag, the per-pair message ordinal and the chunk index, which both
sides compute identically.
"""

from __future__ import annotations

from itertools import count as _counter
from typing import Dict, List, Optional, Tuple, Union

from repro.core.chunking import MAX_CHUNKS_PER_MESSAGE, Chunk, ChunkingPolicy, FixedSizeChunking
from repro.core.mechanisms import OverlapMechanism
from repro.core.patterns import (
    ChunkPoint,
    ComputationPattern,
    consumption_points,
    production_points,
)
from repro.errors import ConfigurationError, TransformError
from repro.tracing.records import (
    CpuBurst,
    Record,
    RecvRecord,
    SendRecord,
    WaitRecord,
)
from repro.tracing.trace import RankTrace, Trace

#: Multiplier used to derive collision-free chunk tags (see :func:`chunk_tag`).
_TAG_STRIDE = 1_000_000


def resolve_overlap_request(pattern: Union[str, ComputationPattern],
                            mechanism: Union[str, OverlapMechanism]
                            ) -> Tuple[ComputationPattern, OverlapMechanism]:
    """Validate a requested (pattern, mechanism) combination up front.

    Accepts labels or the enum members themselves and returns the resolved
    pair.  Raises a clear :class:`ConfigurationError` (a ``ReproError``, so
    the CLI reports it instead of crashing) for unknown labels and for
    combinations that cannot produce an overlapped trace -- requesting an
    overlap with the ``none`` mechanism would silently return the original
    trace from deep inside the transform.
    """
    try:
        if not isinstance(pattern, ComputationPattern):
            pattern = ComputationPattern.from_label(pattern)
        if not isinstance(mechanism, OverlapMechanism):
            mechanism = OverlapMechanism.from_label(mechanism)
    except ValueError as exc:
        raise ConfigurationError(str(exc)) from None
    if mechanism is OverlapMechanism.NONE:
        raise ConfigurationError(
            f"the {pattern.value!r} overlap pattern cannot be applied with "
            f"mechanism 'none' (no partial sends or receives would be "
            f"generated); choose 'full', 'early-send' or 'late-receive', "
            f"or drop the overlap request")
    return pattern, mechanism


def chunk_tag(tag: int, pair_seq: int, chunk_index: int) -> int:
    """Tag of a chunk message, identical on the sender and the receiver."""
    if chunk_index >= MAX_CHUNKS_PER_MESSAGE:
        raise TransformError(
            f"chunk index {chunk_index} exceeds the supported maximum")
    if pair_seq >= _TAG_STRIDE:
        raise TransformError(
            f"per-pair message ordinal {pair_seq} exceeds the supported maximum")
    return ((tag + 1) * _TAG_STRIDE + pair_seq) * MAX_CHUNKS_PER_MESSAGE + chunk_index


class OverlapTransformer:
    """Generates overlapped (potential) traces from original traces."""

    def __init__(self, chunking: Optional[ChunkingPolicy] = None,
                 pattern: ComputationPattern = ComputationPattern.IDEAL,
                 mechanism: OverlapMechanism = OverlapMechanism.FULL):
        self.chunking = chunking or FixedSizeChunking()
        self.pattern = pattern
        self.mechanism = mechanism

    # -- public -------------------------------------------------------------
    def transform(self, trace: Trace) -> Trace:
        """Return the overlapped variant of ``trace``."""
        if self.mechanism is OverlapMechanism.NONE:
            return trace.with_metadata(variant="original")
        transformed = [self._transform_rank(rank_trace) for rank_trace in trace]
        return Trace(
            ranks=transformed,
            mips=trace.mips,
            metadata={
                **trace.metadata,
                "variant": f"overlapped-{self.pattern.value}-{self.mechanism.label}",
                "pattern": self.pattern.value,
                "mechanism": self.mechanism.label,
                "chunking": self.chunking.describe(),
            })

    # -- per-rank transformation ------------------------------------------------
    def _transform_rank(self, rank_trace: RankTrace) -> RankTrace:
        records = rank_trace.records
        preceding_burst, following_burst = self._adjacent_bursts(records)
        burst_instructions = {
            index: record.instructions
            for index, record in enumerate(records) if isinstance(record, CpuBurst)
        }
        wait_position = self._wait_positions(records)

        injections: Dict[int, List[Tuple[float, int, Record]]] = {}
        replacements: Dict[int, List[Record]] = {}
        request_map: Dict[int, List[int]] = {}
        next_request = _counter(self._max_request(records) + 1)
        order = _counter()

        for position, record in enumerate(records):
            if isinstance(record, SendRecord):
                self._transform_send(position, record, preceding_burst,
                                     burst_instructions, injections, replacements,
                                     request_map, next_request, order)
            elif isinstance(record, RecvRecord):
                self._transform_recv(position, record, following_burst,
                                     burst_instructions, wait_position, injections,
                                     replacements, request_map, next_request, order)
            elif isinstance(record, WaitRecord):
                self._rewrite_wait(position, record, request_map, replacements)

        new_records = self._emit(records, injections, replacements)
        return RankTrace(rank=rank_trace.rank, records=new_records)

    # -- send side ---------------------------------------------------------------
    def _transform_send(self, position: int, record: SendRecord,
                        preceding_burst: List[Optional[int]],
                        burst_instructions: Dict[int, float],
                        injections: Dict[int, List[Tuple[float, int, Record]]],
                        replacements: Dict[int, List[Record]],
                        request_map: Dict[int, List[int]],
                        next_request, order) -> None:
        chunks = self.chunking.chunks(record.size)
        if len(chunks) <= 1:
            return
        if self.mechanism.transforms_sends:
            points = production_points(
                chunks, record.production, self.pattern,
                preceding_burst[position], burst_instructions)
        else:
            # Early sends disabled: the message is still chunked (the other
            # side may defer its waits) but every partial send stays at the
            # original send call.
            points = [ChunkPoint(chunk, None) for chunk in chunks]
        chunk_requests: List[int] = []
        at_call_point: List[Record] = []
        for chunk, point in zip(chunks, points):
            request_id = next(next_request)
            chunk_requests.append(request_id)
            partial = SendRecord(
                dst=record.dst, size=chunk.size,
                tag=chunk_tag(record.tag, record.pair_seq, chunk.index),
                blocking=False, request=request_id, buffer=None, pair_seq=0)
            if point.burst_index is None:
                at_call_point.append(partial)
            else:
                injections.setdefault(point.burst_index, []).append(
                    (point.offset, next(order), partial))
        if record.blocking:
            # The original blocking send returned only once the buffer was
            # reusable; preserve that by waiting for all partial sends here.
            replacements[position] = at_call_point + [WaitRecord(requests=chunk_requests)]
        else:
            replacements[position] = at_call_point
            request_map[record.request] = chunk_requests

    # -- receive side -----------------------------------------------------------
    def _transform_recv(self, position: int, record: RecvRecord,
                        following_burst: List[Optional[int]],
                        burst_instructions: Dict[int, float],
                        wait_position: Dict[int, int],
                        injections: Dict[int, List[Tuple[float, int, Record]]],
                        replacements: Dict[int, List[Record]],
                        request_map: Dict[int, List[int]],
                        next_request, order) -> None:
        chunks = self.chunking.chunks(record.size)
        if len(chunks) <= 1:
            return
        if self.mechanism.transforms_receives:
            reference_position = (
                position if record.blocking
                else wait_position.get(record.request, position))
            points = consumption_points(
                chunks, record.consumption, self.pattern,
                following_burst[reference_position], burst_instructions)
        else:
            # Late receives disabled: the message is still chunked (the other
            # side may inject early sends) but every partial receive is
            # waited for at the original receive/wait call.
            points = [ChunkPoint(chunk, None) for chunk in chunks]
        posted: List[Record] = []
        deferred: List[int] = []
        for chunk, point in zip(chunks, points):
            request_id = next(next_request)
            partial = RecvRecord(
                src=record.src, size=chunk.size,
                tag=chunk_tag(record.tag, record.pair_seq, chunk.index),
                blocking=False, request=request_id, buffer=None, pair_seq=0)
            posted.append(partial)
            if point.burst_index is None:
                deferred.append(request_id)
            else:
                injections.setdefault(point.burst_index, []).append(
                    (point.offset, next(order), WaitRecord(requests=[request_id])))
        if record.blocking:
            tail = [WaitRecord(requests=deferred)] if deferred else []
            replacements[position] = posted + tail
        else:
            replacements[position] = posted
            request_map[record.request] = deferred

    # -- waits --------------------------------------------------------------------
    @staticmethod
    def _rewrite_wait(position: int, record: WaitRecord,
                      request_map: Dict[int, List[int]],
                      replacements: Dict[int, List[Record]]) -> None:
        if not any(request in request_map for request in record.requests):
            return
        new_requests: List[int] = []
        for request in record.requests:
            if request in request_map:
                new_requests.extend(request_map.pop(request))
            else:
                new_requests.append(request)
        replacements[position] = (
            [WaitRecord(requests=new_requests)] if new_requests else [])

    # -- emission ----------------------------------------------------------------
    @staticmethod
    def _emit(records: List[Record],
              injections: Dict[int, List[Tuple[float, int, Record]]],
              replacements: Dict[int, List[Record]]) -> List[Record]:
        result: List[Record] = []
        for position, record in enumerate(records):
            if isinstance(record, CpuBurst):
                pieces = injections.get(position)
                if not pieces:
                    result.append(record)
                    continue
                pieces = sorted(pieces, key=lambda item: (item[0], item[1]))
                cursor = 0.0
                for offset, _order, injected in pieces:
                    offset = min(max(offset, 0.0), record.instructions)
                    if offset > cursor:
                        result.append(CpuBurst(instructions=offset - cursor))
                        cursor = offset
                    result.append(injected)
                if record.instructions > cursor:
                    result.append(CpuBurst(instructions=record.instructions - cursor))
                continue
            if position in replacements:
                result.extend(replacements[position])
            else:
                result.append(record)
        return result

    # -- helpers ----------------------------------------------------------------
    @staticmethod
    def _adjacent_bursts(records: List[Record]) -> Tuple[List[Optional[int]],
                                                          List[Optional[int]]]:
        """Nearest preceding / following computation burst of every position."""
        preceding: List[Optional[int]] = []
        latest: Optional[int] = None
        for index, record in enumerate(records):
            preceding.append(latest)
            if isinstance(record, CpuBurst):
                latest = index
        following: List[Optional[int]] = [None] * len(records)
        upcoming: Optional[int] = None
        for index in range(len(records) - 1, -1, -1):
            following[index] = upcoming
            if isinstance(records[index], CpuBurst):
                upcoming = index
        return preceding, following

    @staticmethod
    def _wait_positions(records: List[Record]) -> Dict[int, int]:
        """Position of the wait record of every non-blocking request."""
        positions: Dict[int, int] = {}
        for index, record in enumerate(records):
            if isinstance(record, WaitRecord):
                for request in record.requests:
                    positions.setdefault(request, index)
        return positions

    @staticmethod
    def _max_request(records: List[Record]) -> int:
        highest = -1
        for record in records:
            if isinstance(record, (SendRecord, RecvRecord)) and record.request is not None:
                highest = max(highest, record.request)
        return highest
