"""Analysis of simulation results: speedups, sweeps and bandwidth factors.

The paper's three quantitative findings map onto three helpers here:

* overlap speedup at a given bandwidth (``speedup`` /
  :meth:`BandwidthSweep.speedup_at`);
* the speedup-vs-bandwidth curve and its maximum in the *intermediate*
  bandwidth region where communication time is comparable to computation
  time (:meth:`BandwidthSweep.intermediate_bandwidth`);
* the bandwidth the overlapped execution needs to match the original
  execution's performance at high bandwidth
  (:func:`bandwidth_reduction_factor`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dimemas.results import SimulationResult
from repro.errors import AnalysisError

#: Variant label of the non-overlapped execution in sweep results.
ORIGINAL = "original"


def speedup(baseline: SimulationResult, candidate: SimulationResult) -> float:
    """How much faster ``candidate`` is than ``baseline`` (1.3 == 30 % faster)."""
    if candidate.total_time <= 0:
        raise AnalysisError("candidate execution has zero duration")
    return baseline.total_time / candidate.total_time


def sancho_overlap_bound(compute_time: float, communication_time: float) -> float:
    """Analytical upper bound on overlap speedup (Sancho et al., SC'06).

    With perfect overlap the execution takes ``max(Tcomp, Tcomm)`` instead of
    ``Tcomp + Tcomm``, so the bound is their ratio.  The bound is maximal
    (2x) when communication and computation times are equal -- the
    *intermediate bandwidth* region of the paper.
    """
    if compute_time < 0 or communication_time < 0:
        raise AnalysisError("times must be non-negative")
    longest = max(compute_time, communication_time)
    if longest == 0:
        return 1.0
    return (compute_time + communication_time) / longest


@dataclass
class SweepPoint:
    """All variants simulated at one bandwidth."""

    bandwidth_mbps: float
    times: Dict[str, float]
    original_communication_fraction: float = 0.0
    original_compute_time: float = 0.0
    #: Wall-clock seconds each variant's replay task took (``{}`` when the
    #: sweep was produced without the executor's timing instrumentation).
    task_seconds: Dict[str, float] = field(default_factory=dict)
    #: Per-variant network counters (transfers, bytes, mean queue/transfer
    #: time, intranode share) as recorded by the fabric during the replay.
    network: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def replay_seconds(self) -> float:
        """Summed task time spent replaying this point's variants.

        Tasks may run concurrently on a worker pool, so this can exceed the
        point's contribution to the sweep's elapsed wall time.
        """
        return sum(self.task_seconds.values())

    def time(self, variant: str) -> float:
        try:
            return self.times[variant]
        except KeyError:
            raise AnalysisError(
                f"variant {variant!r} missing at bandwidth {self.bandwidth_mbps}") from None

    def network_stat(self, variant: str, key: str, default: float = 0.0) -> float:
        """One network counter of ``variant`` at this point (0 if absent)."""
        return self.network.get(variant, {}).get(key, default)

    def speedup(self, variant: str) -> float:
        candidate = self.time(variant)
        if candidate <= 0:
            raise AnalysisError(f"variant {variant!r} has zero duration")
        return self.time(ORIGINAL) / candidate


@dataclass
class BandwidthSweep:
    """Speedup-versus-bandwidth data for one application."""

    app_name: str
    variants: List[str]
    points: List[SweepPoint] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.points.sort(key=lambda point: point.bandwidth_mbps)

    # -- basic accessors ---------------------------------------------------
    def bandwidths(self) -> List[float]:
        return [point.bandwidth_mbps for point in self.points]

    def times(self, variant: str) -> List[float]:
        return [point.time(variant) for point in self.points]

    def speedups(self, variant: str) -> List[Tuple[float, float]]:
        """(bandwidth, speedup-over-original) pairs for ``variant``."""
        return [(point.bandwidth_mbps, point.speedup(variant)) for point in self.points]

    def point_at(self, bandwidth_mbps: float) -> SweepPoint:
        for point in self.points:
            if math.isclose(point.bandwidth_mbps, bandwidth_mbps, rel_tol=1e-9):
                return point
        raise AnalysisError(
            f"bandwidth {bandwidth_mbps} MB/s was not part of the sweep")

    def speedup_at(self, bandwidth_mbps: float, variant: str) -> float:
        return self.point_at(bandwidth_mbps).speedup(variant)

    # -- headline numbers ---------------------------------------------------
    def peak_speedup(self, variant: str) -> Tuple[float, float]:
        """(bandwidth, speedup) of the maximum speedup over the sweep."""
        if not self.points:
            raise AnalysisError("empty sweep")
        best = max(self.points, key=lambda point: point.speedup(variant))
        return best.bandwidth_mbps, best.speedup(variant)

    def intermediate_bandwidth(self) -> float:
        """Bandwidth where communication is most comparable to computation.

        The paper defines the interesting (realistic) region as the one where
        the time spent in communication is comparable to the time spent in
        computation; we pick the sweep point whose original execution has a
        blocked fraction closest to one half.
        """
        if not self.points:
            raise AnalysisError("empty sweep")
        best = min(self.points,
                   key=lambda point: abs(point.original_communication_fraction - 0.5))
        return best.bandwidth_mbps

    def intermediate_speedup(self, variant: str) -> float:
        """Speedup of ``variant`` at the intermediate bandwidth."""
        return self.point_at(self.intermediate_bandwidth()).speedup(variant)

    # -- bandwidth requirement analysis ------------------------------------------
    def bandwidth_for_time(self, target_time: float, variant: str) -> Optional[float]:
        """Smallest bandwidth at which ``variant`` runs in <= ``target_time``.

        The sweep samples discrete bandwidths; between two adjacent samples
        the bandwidth is interpolated logarithmically.  Returns ``None`` if
        even the largest swept bandwidth is too slow.
        """
        if target_time <= 0:
            raise AnalysisError("target time must be positive")
        candidates = [(point.bandwidth_mbps, point.time(variant)) for point in self.points]
        for index, (bandwidth, time) in enumerate(candidates):
            if time <= target_time:
                if index == 0:
                    return bandwidth
                previous_bandwidth, previous_time = candidates[index - 1]
                return _log_interpolate(previous_bandwidth, previous_time,
                                        bandwidth, time, target_time)
        return None

    def bandwidth_reduction_factor(self, variant: str,
                                   reference_bandwidth: Optional[float] = None,
                                   tolerance: float = 0.0) -> Optional[float]:
        """How much less bandwidth ``variant`` needs to match the original.

        The original execution's time at ``reference_bandwidth`` (default:
        the highest swept bandwidth) is taken as the performance target; the
        factor is ``reference_bandwidth / bandwidth_needed_by_variant``.
        ``tolerance`` relaxes the target by that relative amount (0.02 means
        "within 2 % of the original's performance"), which filters out the
        per-chunk latency overhead of the overlapped execution on networks so
        fast that there is nothing left to hide.
        """
        if not self.points:
            raise AnalysisError("empty sweep")
        if tolerance < 0:
            raise AnalysisError("tolerance must be non-negative")
        if reference_bandwidth is None:
            reference_bandwidth = self.points[-1].bandwidth_mbps
        target_time = self.point_at(reference_bandwidth).time(ORIGINAL) * (1.0 + tolerance)
        needed = self.bandwidth_for_time(target_time, variant)
        if needed is None or needed <= 0:
            return None
        return reference_bandwidth / needed


def bandwidth_reduction_factor(sweep: BandwidthSweep, variant: str,
                               reference_bandwidth: Optional[float] = None) -> Optional[float]:
    """Module-level convenience wrapper (see the method of the same name)."""
    return sweep.bandwidth_reduction_factor(variant, reference_bandwidth)


def _log_interpolate(bandwidth_low: float, time_low: float,
                     bandwidth_high: float, time_high: float,
                     target_time: float) -> float:
    """Log-space interpolation of the bandwidth that reaches ``target_time``."""
    if time_low <= target_time:
        return bandwidth_low
    if math.isclose(time_low, time_high):
        return bandwidth_high
    fraction = (time_low - target_time) / (time_low - time_high)
    fraction = min(max(fraction, 0.0), 1.0)
    log_low, log_high = math.log(bandwidth_low), math.log(bandwidth_high)
    return math.exp(log_low + fraction * (log_high - log_low))


def geometric_bandwidths(minimum: float, maximum: float, samples: int) -> List[float]:
    """Log-spaced bandwidth values for a sweep (inclusive endpoints)."""
    if minimum <= 0 or maximum <= 0 or maximum < minimum:
        raise AnalysisError("bandwidth range must be positive and increasing")
    if samples < 2:
        raise AnalysisError("a sweep needs at least two samples")
    ratio = (maximum / minimum) ** (1.0 / (samples - 1))
    return [minimum * ratio ** index for index in range(samples)]
