"""Parameter-sweep drivers.

A bandwidth sweep traces the application once, transforms the trace once per
computation pattern, and replays every variant across the requested
bandwidths.  That mirrors the paper's methodology: a single real run feeds
the tracer, and Dimemas replays the resulting traces on many configurable
platforms.

The replays themselves are independent, so the drivers hand the expanded
(variant x platform) grid to a :class:`repro.core.executor.SweepExecutor`,
which runs it serially by default or on ``jobs`` worker processes with
bit-identical results.  :func:`run_topology_sweep` widens the grid with a
topology axis (flat bus, hierarchical tree, 2-D torus), replaying the same
traced run on structurally different interconnects.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING, Union

from repro.core.analysis import ORIGINAL, BandwidthSweep
from repro.core.executor import SweepExecutor, validate_variant_labels
from repro.core.mechanisms import OverlapMechanism
from repro.core.patterns import ComputationPattern
from repro.dimemas.platform import Platform
from repro.dimemas.topology import TopologySpec
from repro.errors import AnalysisError
from repro.tracing.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import ApplicationModel
    from repro.core.environment import OverlapStudyEnvironment


def run_bandwidth_sweep(app: "ApplicationModel",
                        bandwidths_mbps: Sequence[float],
                        patterns: Iterable[ComputationPattern] = (
                            ComputationPattern.REAL, ComputationPattern.IDEAL),
                        mechanism: OverlapMechanism = OverlapMechanism.FULL,
                        environment: Optional["OverlapStudyEnvironment"] = None,
                        platform: Optional[Platform] = None,
                        jobs: Optional[int] = None) -> BandwidthSweep:
    """Sweep the network bandwidth for one application.

    Returns a :class:`BandwidthSweep` whose variants are ``original`` plus
    one entry per requested pattern (labelled by the pattern value).  With
    ``jobs`` > 1 the replays run on a worker pool; the result is identical
    to the serial sweep.
    """
    from repro.core.environment import OverlapStudyEnvironment

    environment = environment or OverlapStudyEnvironment(platform=platform)
    base_platform = platform or environment.platform
    patterns = list(patterns)
    validate_variant_labels(pattern.value for pattern in patterns)

    original = environment.trace(app)
    variants: Dict[str, Trace] = {ORIGINAL: original}
    for pattern in patterns:
        variants[pattern.value] = environment.overlap(
            original, pattern=pattern, mechanism=mechanism)

    executor = SweepExecutor(jobs=jobs)
    points, wall_seconds = executor.run_sweep(
        variants, base_platform, bandwidths_mbps, app_name=app.name,
        simulator=environment.simulator)
    return BandwidthSweep(
        app_name=app.name,
        variants=list(variants),
        points=points,
        metadata={
            "mechanism": mechanism.label,
            "chunking": environment.chunking.describe(),
            "num_ranks": app.num_ranks,
            "platform": base_platform.name,
            "jobs": executor.jobs,
            "replay_wall_seconds": wall_seconds,
        })


def run_topology_sweep(app: "ApplicationModel",
                       topologies: Sequence[Union[TopologySpec, str]],
                       bandwidths_mbps: Sequence[float],
                       patterns: Iterable[ComputationPattern] = (
                           ComputationPattern.REAL, ComputationPattern.IDEAL),
                       mechanism: OverlapMechanism = OverlapMechanism.FULL,
                       environment: Optional["OverlapStudyEnvironment"] = None,
                       platform: Optional[Platform] = None,
                       jobs: Optional[int] = None) -> Dict[str, BandwidthSweep]:
    """Replay one traced run across topologies x bandwidths x variants.

    The application is traced (and overlapped) exactly once; the whole
    topology x bandwidth grid is expanded into one task list and executed in
    a single :class:`SweepExecutor` pass, so a multi-process pool is shared
    across topologies.  Returns one :class:`BandwidthSweep` per topology,
    keyed by the topology's string form, each bit-identical to the sweep a
    serial run on that topology alone would produce.  Because the grid is
    executed as one batch, every sweep's ``replay_wall_seconds`` metadata
    is the wall time of the *whole* grid, not of that topology's share.
    """
    from repro.core.environment import OverlapStudyEnvironment

    if not topologies:
        raise AnalysisError("topology sweep needs at least one topology")
    specs = [TopologySpec.parse(topology) for topology in topologies]
    keys = [spec.to_string() for spec in specs]
    if len(set(keys)) != len(keys):
        raise AnalysisError(f"duplicate topologies in sweep: {keys}")

    environment = environment or OverlapStudyEnvironment(platform=platform)
    base_platform = platform or environment.platform
    patterns = list(patterns)
    validate_variant_labels(pattern.value for pattern in patterns)

    original = environment.trace(app)
    variants: Dict[str, Trace] = {ORIGINAL: original}
    for pattern in patterns:
        variants[pattern.value] = environment.overlap(
            original, pattern=pattern, mechanism=mechanism)

    platforms: List[Platform] = []
    for spec in specs:
        topology_platform = base_platform.with_topology(spec)
        platforms.extend(topology_platform.with_bandwidth(bandwidth)
                         for bandwidth in bandwidths_mbps)

    executor = SweepExecutor(jobs=jobs)
    tasks = executor.expand(variants, platforms, app_name=app.name)
    start = time.perf_counter()
    results = executor.execute(tasks, variants, simulator=environment.simulator)
    wall_seconds = time.perf_counter() - start

    points_per_topology = len(bandwidths_mbps)
    sweeps: Dict[str, BandwidthSweep] = {}
    for index, (spec, key) in enumerate(zip(specs, keys)):
        first = index * points_per_topology
        subset = [result for result in results
                  if first <= result.point < first + points_per_topology]
        sweeps[key] = BandwidthSweep(
            app_name=app.name,
            variants=list(variants),
            points=executor.merge(subset),
            metadata={
                "mechanism": mechanism.label,
                "chunking": environment.chunking.describe(),
                "num_ranks": app.num_ranks,
                "platform": base_platform.name,
                "topology": key,
                "topologies": keys,
                "jobs": executor.jobs,
                "replay_wall_seconds": wall_seconds,
            })
    return sweeps


def run_mechanism_sweep(app: "ApplicationModel",
                        bandwidth_mbps: float,
                        pattern: ComputationPattern = ComputationPattern.IDEAL,
                        mechanisms: Sequence[OverlapMechanism] = (
                            OverlapMechanism.EARLY_SEND,
                            OverlapMechanism.LATE_RECEIVE,
                            OverlapMechanism.FULL),
                        environment: Optional["OverlapStudyEnvironment"] = None,
                        platform: Optional[Platform] = None,
                        jobs: Optional[int] = None) -> Dict[str, float]:
    """Speedup of each overlapping mechanism at a fixed bandwidth.

    Returns a mapping ``mechanism label -> speedup over the original``.
    """
    from repro.core.environment import OverlapStudyEnvironment

    environment = environment or OverlapStudyEnvironment(platform=platform)
    base_platform = (platform or environment.platform).with_bandwidth(bandwidth_mbps)
    labels = validate_variant_labels(
        mechanism.label for mechanism in mechanisms)

    original = environment.trace(app)
    variants: Dict[str, Trace] = {ORIGINAL: original}
    for mechanism, label in zip(mechanisms, labels):
        variants[label] = environment.overlap(
            original, pattern=pattern, mechanism=mechanism)

    executor = SweepExecutor(jobs=jobs)
    tasks = executor.expand(variants, [base_platform], app_name=app.name)
    results = executor.execute(tasks, variants,
                               simulator=environment.simulator)
    times = {result.variant: result.total_time for result in results}
    original_time = times[ORIGINAL]
    return {label: original_time / times[label] for label in labels}
