"""Parameter-sweep drivers (deprecated adapters).

.. deprecated::
    These drivers predate the unified experiment API and are kept as thin
    adapters so existing callers keep working; new code should build an
    :class:`~repro.experiments.spec.ExperimentSpec` (directly, fluently via
    :class:`~repro.experiments.Experiment`, or from a JSON/TOML file) and
    call :func:`~repro.experiments.runner.run_experiment`.

Each adapter constructs the equivalent spec and routes through the one
runner; results are bit-identical to the historical implementations
(``jobs > 1`` included), which the golden-equivalence tests in
``tests/experiments/test_equivalence.py`` pin.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Optional, Sequence, TYPE_CHECKING, Union

from repro.core.analysis import ORIGINAL, BandwidthSweep
from repro.core.executor import validate_variant_labels
from repro.core.mechanisms import OverlapMechanism
from repro.core.patterns import ComputationPattern
from repro.dimemas.platform import Platform
from repro.dimemas.topology import TopologySpec
from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import ApplicationModel
    from repro.core.environment import OverlapStudyEnvironment


def _deprecated(name: str) -> None:
    warnings.warn(
        f"{name} is deprecated; build an ExperimentSpec and use "
        f"repro.experiments.run_experiment instead",
        DeprecationWarning, stacklevel=3)


def _adapter_environment(environment: Optional["OverlapStudyEnvironment"],
                         platform: Optional[Platform]) -> "OverlapStudyEnvironment":
    from repro.core.environment import OverlapStudyEnvironment
    return environment or OverlapStudyEnvironment(platform=platform)


def run_bandwidth_sweep(app: "ApplicationModel",
                        bandwidths_mbps: Sequence[float],
                        patterns: Iterable[ComputationPattern] = (
                            ComputationPattern.REAL, ComputationPattern.IDEAL),
                        mechanism: OverlapMechanism = OverlapMechanism.FULL,
                        environment: Optional["OverlapStudyEnvironment"] = None,
                        platform: Optional[Platform] = None,
                        jobs: Optional[int] = None) -> BandwidthSweep:
    """Sweep the network bandwidth for one application.

    .. deprecated:: use ``Experiment.for_app(...).bandwidths(...).run()``.

    Returns a :class:`BandwidthSweep` whose variants are ``original`` plus
    one entry per requested pattern (labelled by the pattern value).  With
    ``jobs`` > 1 the replays run on a worker pool; the result is identical
    to the serial sweep.
    """
    from repro.experiments.runner import run_experiment
    from repro.experiments.spec import ExperimentSpec

    _deprecated("run_bandwidth_sweep")
    patterns = list(patterns)
    validate_variant_labels(pattern.value for pattern in patterns)
    environment = _adapter_environment(environment, platform)
    spec = ExperimentSpec(
        apps=(app.name,),
        bandwidths=tuple(bandwidths_mbps),
        patterns=tuple(pattern.value for pattern in patterns),
        mechanisms=(mechanism.label,),
        jobs=1 if jobs is None else jobs)
    result = run_experiment(spec, environment=environment, platform=platform,
                            apps=[app])
    return result.sweep()


def run_topology_sweep(app: "ApplicationModel",
                       topologies: Sequence[Union[TopologySpec, str]],
                       bandwidths_mbps: Sequence[float],
                       patterns: Iterable[ComputationPattern] = (
                           ComputationPattern.REAL, ComputationPattern.IDEAL),
                       mechanism: OverlapMechanism = OverlapMechanism.FULL,
                       environment: Optional["OverlapStudyEnvironment"] = None,
                       platform: Optional[Platform] = None,
                       jobs: Optional[int] = None) -> Dict[str, BandwidthSweep]:
    """Replay one traced run across topologies x bandwidths x variants.

    .. deprecated:: use ``Experiment.for_app(...).topologies(...).run()``.

    Returns one :class:`BandwidthSweep` per topology, keyed by the
    topology's string form.  The whole grid runs as one executor batch, so
    every sweep's ``replay_wall_seconds`` metadata is the wall time of the
    *whole* grid, not of that topology's share.
    """
    from repro.experiments.runner import run_experiment
    from repro.experiments.spec import ExperimentSpec

    _deprecated("run_topology_sweep")
    if not topologies:
        raise AnalysisError("topology sweep needs at least one topology")
    keys = [TopologySpec.parse(topology).to_string() for topology in topologies]
    if len(set(keys)) != len(keys):
        raise AnalysisError(f"duplicate topologies in sweep: {keys}")
    patterns = list(patterns)
    validate_variant_labels(pattern.value for pattern in patterns)
    environment = _adapter_environment(environment, platform)
    spec = ExperimentSpec(
        apps=(app.name,),
        topologies=tuple(keys),
        bandwidths=tuple(bandwidths_mbps),
        patterns=tuple(pattern.value for pattern in patterns),
        mechanisms=(mechanism.label,),
        jobs=1 if jobs is None else jobs)
    result = run_experiment(spec, environment=environment, platform=platform,
                            apps=[app])
    return result.by_topology()


def run_mechanism_sweep(app: "ApplicationModel",
                        bandwidth_mbps: float,
                        pattern: ComputationPattern = ComputationPattern.IDEAL,
                        mechanisms: Sequence[OverlapMechanism] = (
                            OverlapMechanism.EARLY_SEND,
                            OverlapMechanism.LATE_RECEIVE,
                            OverlapMechanism.FULL),
                        environment: Optional["OverlapStudyEnvironment"] = None,
                        platform: Optional[Platform] = None,
                        jobs: Optional[int] = None) -> Dict[str, float]:
    """Speedup of each overlapping mechanism at a fixed bandwidth.

    .. deprecated:: use ``Experiment.for_app(...).mechanisms(...).run()``.

    Returns a mapping ``mechanism label -> speedup over the original``.
    """
    from repro.experiments.runner import run_experiment
    from repro.experiments.spec import ExperimentSpec

    _deprecated("run_mechanism_sweep")
    labels = validate_variant_labels(
        mechanism.label for mechanism in mechanisms)
    environment = _adapter_environment(environment, platform)
    spec = ExperimentSpec(
        apps=(app.name,),
        bandwidths=(bandwidth_mbps,),
        patterns=(pattern.value,),
        mechanisms=tuple(labels),
        jobs=1 if jobs is None else jobs)
    result = run_experiment(spec, environment=environment, platform=platform,
                            apps=[app])
    point = result.sweep().points[0]
    # The runner labels a lone overlapped variant by its pattern value, so
    # map positionally back onto the requested mechanism labels.
    variants = [v for v in result.variants if v != ORIGINAL]
    return {label: point.time(ORIGINAL) / point.time(variant)
            for label, variant in zip(labels, variants)}
