"""Parameter-sweep drivers.

A bandwidth sweep traces the application once, transforms the trace once per
computation pattern, and replays every variant across the requested
bandwidths.  That mirrors the paper's methodology: a single real run feeds
the tracer, and Dimemas replays the resulting traces on many configurable
platforms.

The replays themselves are independent, so both drivers hand the expanded
(variant x bandwidth) grid to a :class:`repro.core.executor.SweepExecutor`,
which runs it serially by default or on ``jobs`` worker processes with
bit-identical results.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, TYPE_CHECKING

from repro.core.analysis import ORIGINAL, BandwidthSweep
from repro.core.executor import SweepExecutor, validate_variant_labels
from repro.core.mechanisms import OverlapMechanism
from repro.core.patterns import ComputationPattern
from repro.dimemas.platform import Platform
from repro.tracing.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import ApplicationModel
    from repro.core.environment import OverlapStudyEnvironment


def run_bandwidth_sweep(app: "ApplicationModel",
                        bandwidths_mbps: Sequence[float],
                        patterns: Iterable[ComputationPattern] = (
                            ComputationPattern.REAL, ComputationPattern.IDEAL),
                        mechanism: OverlapMechanism = OverlapMechanism.FULL,
                        environment: Optional["OverlapStudyEnvironment"] = None,
                        platform: Optional[Platform] = None,
                        jobs: Optional[int] = None) -> BandwidthSweep:
    """Sweep the network bandwidth for one application.

    Returns a :class:`BandwidthSweep` whose variants are ``original`` plus
    one entry per requested pattern (labelled by the pattern value).  With
    ``jobs`` > 1 the replays run on a worker pool; the result is identical
    to the serial sweep.
    """
    from repro.core.environment import OverlapStudyEnvironment

    environment = environment or OverlapStudyEnvironment(platform=platform)
    base_platform = platform or environment.platform
    patterns = list(patterns)
    validate_variant_labels(pattern.value for pattern in patterns)

    original = environment.trace(app)
    variants: Dict[str, Trace] = {ORIGINAL: original}
    for pattern in patterns:
        variants[pattern.value] = environment.overlap(
            original, pattern=pattern, mechanism=mechanism)

    executor = SweepExecutor(jobs=jobs)
    points, wall_seconds = executor.run_sweep(
        variants, base_platform, bandwidths_mbps, app_name=app.name,
        simulator=environment.simulator)
    return BandwidthSweep(
        app_name=app.name,
        variants=list(variants),
        points=points,
        metadata={
            "mechanism": mechanism.label,
            "chunking": environment.chunking.describe(),
            "num_ranks": app.num_ranks,
            "platform": base_platform.name,
            "jobs": executor.jobs,
            "replay_wall_seconds": wall_seconds,
        })


def run_mechanism_sweep(app: "ApplicationModel",
                        bandwidth_mbps: float,
                        pattern: ComputationPattern = ComputationPattern.IDEAL,
                        mechanisms: Sequence[OverlapMechanism] = (
                            OverlapMechanism.EARLY_SEND,
                            OverlapMechanism.LATE_RECEIVE,
                            OverlapMechanism.FULL),
                        environment: Optional["OverlapStudyEnvironment"] = None,
                        platform: Optional[Platform] = None,
                        jobs: Optional[int] = None) -> Dict[str, float]:
    """Speedup of each overlapping mechanism at a fixed bandwidth.

    Returns a mapping ``mechanism label -> speedup over the original``.
    """
    from repro.core.environment import OverlapStudyEnvironment

    environment = environment or OverlapStudyEnvironment(platform=platform)
    base_platform = (platform or environment.platform).with_bandwidth(bandwidth_mbps)
    labels = validate_variant_labels(
        mechanism.label for mechanism in mechanisms)

    original = environment.trace(app)
    variants: Dict[str, Trace] = {ORIGINAL: original}
    for mechanism, label in zip(mechanisms, labels):
        variants[label] = environment.overlap(
            original, pattern=pattern, mechanism=mechanism)

    executor = SweepExecutor(jobs=jobs)
    tasks = executor.expand(variants, [base_platform], app_name=app.name)
    results = executor.execute(tasks, variants,
                               simulator=environment.simulator)
    times = {result.variant: result.total_time for result in results}
    original_time = times[ORIGINAL]
    return {label: original_time / times[label] for label in labels}
