"""Parameter-sweep drivers.

A bandwidth sweep traces the application once, transforms the trace once per
computation pattern, and replays every variant across the requested
bandwidths.  That mirrors the paper's methodology: a single real run feeds
the tracer, and Dimemas replays the resulting traces on many configurable
platforms.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, TYPE_CHECKING

from repro.core.analysis import ORIGINAL, BandwidthSweep, SweepPoint
from repro.core.mechanisms import OverlapMechanism
from repro.core.patterns import ComputationPattern
from repro.dimemas.platform import Platform
from repro.tracing.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import ApplicationModel
    from repro.core.environment import OverlapStudyEnvironment


def run_bandwidth_sweep(app: "ApplicationModel",
                        bandwidths_mbps: Sequence[float],
                        patterns: Iterable[ComputationPattern] = (
                            ComputationPattern.REAL, ComputationPattern.IDEAL),
                        mechanism: OverlapMechanism = OverlapMechanism.FULL,
                        environment: Optional["OverlapStudyEnvironment"] = None,
                        platform: Optional[Platform] = None) -> BandwidthSweep:
    """Sweep the network bandwidth for one application.

    Returns a :class:`BandwidthSweep` whose variants are ``original`` plus
    one entry per requested pattern (labelled by the pattern value).
    """
    from repro.core.environment import OverlapStudyEnvironment

    environment = environment or OverlapStudyEnvironment(platform=platform)
    base_platform = platform or environment.platform
    patterns = list(patterns)

    original = environment.trace(app)
    variants: Dict[str, Trace] = {ORIGINAL: original}
    for pattern in patterns:
        variants[pattern.value] = environment.overlap(
            original, pattern=pattern, mechanism=mechanism)

    sweep = BandwidthSweep(
        app_name=app.name,
        variants=list(variants),
        metadata={
            "mechanism": mechanism.label,
            "chunking": environment.chunking.describe(),
            "num_ranks": app.num_ranks,
            "platform": base_platform.name,
        })
    for bandwidth in bandwidths_mbps:
        point_platform = base_platform.with_bandwidth(bandwidth)
        times: Dict[str, float] = {}
        original_result = None
        for label, trace in variants.items():
            result = environment.simulate(trace, platform=point_platform,
                                          label=f"{app.name}:{label}@{bandwidth}MBps")
            times[label] = result.total_time
            if label == ORIGINAL:
                original_result = result
        sweep.points.append(SweepPoint(
            bandwidth_mbps=bandwidth,
            times=times,
            original_communication_fraction=original_result.communication_fraction(),
            original_compute_time=original_result.max_compute_time()))
    sweep.points.sort(key=lambda point: point.bandwidth_mbps)
    return sweep


def run_mechanism_sweep(app: "ApplicationModel",
                        bandwidth_mbps: float,
                        pattern: ComputationPattern = ComputationPattern.IDEAL,
                        mechanisms: Sequence[OverlapMechanism] = (
                            OverlapMechanism.EARLY_SEND,
                            OverlapMechanism.LATE_RECEIVE,
                            OverlapMechanism.FULL),
                        environment: Optional["OverlapStudyEnvironment"] = None,
                        platform: Optional[Platform] = None) -> Dict[str, float]:
    """Speedup of each overlapping mechanism at a fixed bandwidth.

    Returns a mapping ``mechanism label -> speedup over the original``.
    """
    from repro.core.environment import OverlapStudyEnvironment

    environment = environment or OverlapStudyEnvironment(platform=platform)
    base_platform = (platform or environment.platform).with_bandwidth(bandwidth_mbps)

    original = environment.trace(app)
    original_time = environment.simulate(
        original, platform=base_platform, label=f"{app.name}:original").total_time

    speedups: Dict[str, float] = {}
    for mechanism in mechanisms:
        overlapped = environment.overlap(original, pattern=pattern, mechanism=mechanism)
        result = environment.simulate(
            overlapped, platform=base_platform,
            label=f"{app.name}:{mechanism.label}")
        speedups[mechanism.label] = original_time / result.total_time
    return speedups
