"""The overlap study environment (paper Figure 1).

The environment connects the three stages of the paper's tool chain:

1. the tracing virtual machine produces the annotated original trace of an
   application model,
2. the overlap transformer generates the potential (overlapped) traces, and
3. the Dimemas replay engine reconstructs the time behaviours on a
   configurable platform, which can then be compared with the Paraver-like
   timeline utilities.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

from repro.core.chunking import ChunkingPolicy, FixedSizeChunking
from repro.core.mechanisms import OverlapMechanism
from repro.core.patterns import ComputationPattern
from repro.core.study import OverlapStudy
from repro.dimemas.platform import Platform
from repro.dimemas.results import SimulationResult
from repro.dimemas.simulator import DimemasSimulator
from repro.tracing.machine import TracingVirtualMachine
from repro.tracing.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import ApplicationModel


class OverlapStudyEnvironment:
    """Facade over tracing, overlap transformation, replay and comparison."""

    def __init__(self, platform: Optional[Platform] = None,
                 chunking: Optional[ChunkingPolicy] = None,
                 validate: bool = True):
        self.platform = platform or Platform()
        self.chunking = chunking or FixedSizeChunking(chunk_bytes=16384, max_chunks=64)
        self.machine = TracingVirtualMachine(validate=validate)
        self.simulator = DimemasSimulator(self.platform)

    # -- stage 1: tracing -----------------------------------------------------
    def trace(self, app: "ApplicationModel") -> Trace:
        """Run the tracing virtual machine on ``app``."""
        return self.machine.trace(app)

    # -- stage 2: overlap transformation ---------------------------------------
    def overlap(self, trace: Trace,
                pattern: ComputationPattern = ComputationPattern.IDEAL,
                mechanism: OverlapMechanism = OverlapMechanism.FULL) -> Trace:
        """Generate the overlapped (potential) trace of ``trace``."""
        from repro.core.overlap import OverlapTransformer
        transformer = OverlapTransformer(
            chunking=self.chunking, pattern=pattern, mechanism=mechanism)
        return transformer.transform(trace)

    # -- stage 3: replay ---------------------------------------------------------
    def simulate(self, trace: Trace, platform: Optional[Platform] = None,
                 bandwidth_mbps: Optional[float] = None,
                 label: Optional[str] = None) -> SimulationResult:
        """Replay ``trace`` on ``platform`` (optionally overriding bandwidth)."""
        platform = platform or self.platform
        if bandwidth_mbps is not None:
            platform = platform.with_bandwidth(bandwidth_mbps)
        return self.simulator.simulate(trace, platform=platform, label=label)

    # -- one-stop study -----------------------------------------------------------
    def study(self, app: "ApplicationModel",
              platform: Optional[Platform] = None,
              patterns: Iterable[ComputationPattern] = (
                  ComputationPattern.REAL, ComputationPattern.IDEAL),
              mechanism: OverlapMechanism = OverlapMechanism.FULL,
              jobs: Optional[int] = None) -> OverlapStudy:
        """Trace, transform and replay ``app``; return the assembled study.

        A thin wrapper over :func:`repro.core.study.batch_study` for a
        single application, so every study entry point shares the unified
        experiment pipeline (including variant-label validation and the
        ``jobs`` worker pool).
        """
        from repro.core.study import batch_study
        return batch_study(
            [app], patterns=patterns, mechanism=mechanism,
            environment=self, platform=platform or self.platform,
            jobs=jobs)[app.name]
