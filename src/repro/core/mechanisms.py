"""Overlapping mechanisms.

The paper's tracing tool can generate traces that enforce only a subset of
the overlapping mechanisms so each can be studied separately: sending
partial data as soon as it is produced (early sends), and waiting for
partial data only at the moment it is consumed (late receives).
"""

from __future__ import annotations

from enum import Flag, auto


class OverlapMechanism(Flag):
    """Which halves of the automatic-overlap mechanism are enabled."""

    NONE = 0
    EARLY_SEND = auto()
    LATE_RECEIVE = auto()
    FULL = EARLY_SEND | LATE_RECEIVE

    @property
    def transforms_sends(self) -> bool:
        return bool(self & OverlapMechanism.EARLY_SEND)

    @property
    def transforms_receives(self) -> bool:
        return bool(self & OverlapMechanism.LATE_RECEIVE)

    @property
    def label(self) -> str:
        if self is OverlapMechanism.FULL:
            return "full"
        if self is OverlapMechanism.EARLY_SEND:
            return "early-send"
        if self is OverlapMechanism.LATE_RECEIVE:
            return "late-receive"
        return "none"

    @classmethod
    def from_label(cls, label: str) -> "OverlapMechanism":
        mapping = {
            "full": cls.FULL,
            "early-send": cls.EARLY_SEND,
            "late-receive": cls.LATE_RECEIVE,
            "none": cls.NONE,
        }
        try:
            return mapping[label.lower()]
        except KeyError:
            raise ValueError(f"unknown overlap mechanism {label!r}") from None
