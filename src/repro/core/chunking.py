"""Message chunking policies.

The automatic-overlap mechanism partitions every original message into
independent chunks; every chunk is sent as soon as it is produced and waited
for in the moment it is needed.  The chunking policy is a pure function of
the message size, so the sender and the receiver always agree on the number
and the sizes of the chunks without any coordination.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError

#: Upper bound on chunks per message; keeps derived chunk tags collision-free.
MAX_CHUNKS_PER_MESSAGE = 512


@dataclass(frozen=True)
class Chunk:
    """One chunk of a message: its index, fraction range and size in bytes."""

    index: int
    lo: float
    hi: float
    size: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(f"negative chunk index: {self.index}")
        if not (0.0 <= self.lo < self.hi <= 1.0 + 1e-12):
            raise ConfigurationError(f"invalid chunk range [{self.lo}, {self.hi})")
        if self.size < 0:
            raise ConfigurationError(f"negative chunk size: {self.size}")

    def overlaps(self, lo: float, hi: float) -> bool:
        """True if the fraction range [lo, hi) touches this chunk."""
        return lo < self.hi and hi > self.lo


class ChunkingPolicy(ABC):
    """Decides how many chunks a message of a given size is split into."""

    @abstractmethod
    def chunk_count(self, size: int) -> int:
        """Number of chunks for a message of ``size`` bytes."""

    def chunks(self, size: int) -> List[Chunk]:
        """The chunks of a message of ``size`` bytes (sizes sum to ``size``)."""
        if size < 0:
            raise ConfigurationError(f"negative message size: {size}")
        count = max(1, min(self.chunk_count(size), MAX_CHUNKS_PER_MESSAGE))
        base = size // count
        remainder = size - base * count
        chunks: List[Chunk] = []
        for index in range(count):
            chunk_size = base + (1 if index < remainder else 0)
            chunks.append(Chunk(
                index=index,
                lo=index / count,
                hi=(index + 1) / count,
                size=chunk_size))
        return chunks

    def describe(self) -> str:
        return repr(self)


class FixedCountChunking(ChunkingPolicy):
    """Split every message into (up to) a fixed number of chunks.

    Small messages are split into fewer chunks so that no chunk is smaller
    than ``min_chunk_bytes``.
    """

    def __init__(self, count: int = 16, min_chunk_bytes: int = 256):
        if count < 1:
            raise ConfigurationError(f"chunk count must be >= 1, got {count!r}")
        if min_chunk_bytes < 1:
            raise ConfigurationError(
                f"min_chunk_bytes must be >= 1, got {min_chunk_bytes!r}")
        self.count = count
        self.min_chunk_bytes = min_chunk_bytes

    def chunk_count(self, size: int) -> int:
        if size <= 0:
            return 1
        largest_sensible = max(1, size // self.min_chunk_bytes)
        return min(self.count, largest_sensible)

    def __repr__(self) -> str:
        return f"FixedCountChunking(count={self.count}, min_chunk_bytes={self.min_chunk_bytes})"


class FixedSizeChunking(ChunkingPolicy):
    """Split every message into chunks of (up to) a fixed size in bytes."""

    def __init__(self, chunk_bytes: int = 16384, max_chunks: int = 64):
        if chunk_bytes < 1:
            raise ConfigurationError(f"chunk_bytes must be >= 1, got {chunk_bytes!r}")
        if max_chunks < 1:
            raise ConfigurationError(f"max_chunks must be >= 1, got {max_chunks!r}")
        self.chunk_bytes = chunk_bytes
        self.max_chunks = max_chunks

    def chunk_count(self, size: int) -> int:
        if size <= 0:
            return 1
        return min(self.max_chunks, math.ceil(size / self.chunk_bytes))

    def __repr__(self) -> str:
        return f"FixedSizeChunking(chunk_bytes={self.chunk_bytes}, max_chunks={self.max_chunks})"
