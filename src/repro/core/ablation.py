"""Ablation studies of the overlap mechanism's design choices.

DESIGN.md calls out the design decisions whose influence the environment can
quantify.  Each function here runs one such ablation for a given application
and returns a mapping from the varied parameter to the resulting
ideal-pattern speedup:

* chunking policy / chunk size (how finely messages are partitioned);
* the eager/rendezvous threshold of the MPI layer;
* the relative CPU speed of the target machine (the paper's future-work
  "faster nodes make overlap more valuable" argument).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, TYPE_CHECKING

from repro.core.chunking import ChunkingPolicy, FixedSizeChunking
from repro.core.mechanisms import OverlapMechanism
from repro.core.patterns import ComputationPattern
from repro.core.overlap import OverlapTransformer
from repro.dimemas.platform import Platform
from repro.dimemas.simulator import DimemasSimulator
from repro.tracing.machine import TracingVirtualMachine

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import ApplicationModel


def _speedup(original_trace, overlapped_trace, platform: Platform) -> float:
    simulator = DimemasSimulator(platform)
    original = simulator.simulate(original_trace)
    overlapped = simulator.simulate(overlapped_trace)
    return original.total_time / overlapped.total_time


def chunk_size_ablation(app: "ApplicationModel",
                        chunk_sizes: Sequence[int] = (4096, 16384, 65536, 262144),
                        platform: Optional[Platform] = None,
                        pattern: ComputationPattern = ComputationPattern.IDEAL) -> Dict[int, float]:
    """Ideal-pattern speedup as a function of the chunk size in bytes.

    Small chunks pipeline better but pay more per-message latency; very large
    chunks degenerate into the original single message.
    """
    platform = platform or Platform()
    trace = TracingVirtualMachine().trace(app)
    results: Dict[int, float] = {}
    for chunk_bytes in chunk_sizes:
        transformer = OverlapTransformer(
            chunking=FixedSizeChunking(chunk_bytes=chunk_bytes, max_chunks=256),
            pattern=pattern, mechanism=OverlapMechanism.FULL)
        results[chunk_bytes] = _speedup(trace, transformer.transform(trace), platform)
    return results


def chunking_policy_ablation(app: "ApplicationModel",
                             policies: Dict[str, ChunkingPolicy],
                             platform: Optional[Platform] = None) -> Dict[str, float]:
    """Ideal-pattern speedup for arbitrary named chunking policies."""
    platform = platform or Platform()
    trace = TracingVirtualMachine().trace(app)
    results: Dict[str, float] = {}
    for name, policy in policies.items():
        transformer = OverlapTransformer(chunking=policy,
                                         pattern=ComputationPattern.IDEAL,
                                         mechanism=OverlapMechanism.FULL)
        results[name] = _speedup(trace, transformer.transform(trace), platform)
    return results


def eager_threshold_ablation(app: "ApplicationModel",
                             thresholds: Sequence[int] = (0, 16384, 65536, 1 << 20),
                             platform: Optional[Platform] = None) -> Dict[int, float]:
    """Ideal-pattern speedup as a function of the eager/rendezvous threshold.

    With a tiny threshold every chunk needs a rendezvous with the (not yet
    posted) receive, which delays the early transfers and eats most of the
    overlap; a generous threshold lets chunks flow as soon as they are
    produced.
    """
    platform = platform or Platform()
    trace = TracingVirtualMachine().trace(app)
    transformer = OverlapTransformer(pattern=ComputationPattern.IDEAL,
                                     mechanism=OverlapMechanism.FULL)
    overlapped = transformer.transform(trace)
    results: Dict[int, float] = {}
    for threshold in thresholds:
        # replace() carries every other field (topology, mpi_overhead, ...)
        # instead of enumerating them and silently dropping new ones.
        varied = replace(platform, name=f"{platform.name}-eager{threshold}",
                         eager_threshold=threshold)
        results[threshold] = _speedup(trace, overlapped, varied)
    return results


def cpu_speed_ablation(app: "ApplicationModel",
                       cpu_speeds: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
                       platform: Optional[Platform] = None) -> Dict[float, float]:
    """Ideal-pattern speedup as a function of the relative CPU speed.

    Faster CPUs shrink the computation, so a fixed network looks relatively
    slower and the benefit of hiding it grows -- the scaling argument behind
    the paper's conclusion that overlap relaxes network requirements.
    """
    platform = platform or Platform()
    trace = TracingVirtualMachine().trace(app)
    transformer = OverlapTransformer(pattern=ComputationPattern.IDEAL,
                                     mechanism=OverlapMechanism.FULL)
    overlapped = transformer.transform(trace)
    results: Dict[float, float] = {}
    for speed in cpu_speeds:
        results[speed] = _speedup(trace, overlapped, platform.with_cpu_speed(speed))
    return results
