"""Ablation studies of the overlap mechanism's design choices.

DESIGN.md calls out the design decisions whose influence the environment can
quantify.  Each function here runs one such ablation for a given application
and returns a mapping from the varied parameter to the resulting
ideal-pattern speedup:

* chunking policy / chunk size (how finely messages are partitioned);
* the eager/rendezvous threshold of the MPI layer;
* the relative CPU speed of the target machine (the paper's future-work
  "faster nodes make overlap more valuable" argument).

.. deprecated::
    The helpers are thin adapters over the unified experiment API: the
    eager-threshold and CPU-speed ablations are single specs with an
    ``eager_thresholds`` / ``cpu_speeds`` platform axis, and the chunking
    ablations run one single-point spec per policy.  New code should build
    the specs directly (:class:`repro.experiments.Experiment`).
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Sequence, TYPE_CHECKING

from repro.core.chunking import ChunkingPolicy
from repro.core.patterns import ComputationPattern
from repro.dimemas.platform import Platform

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import ApplicationModel


def _deprecated(name: str) -> None:
    warnings.warn(
        f"{name} is deprecated; build an ExperimentSpec and use "
        f"repro.experiments.run_experiment instead",
        DeprecationWarning, stacklevel=3)


def _platform_overrides(platform: Platform) -> Dict[str, object]:
    """A platform's full field set, as experiment-spec overrides."""
    from repro.dimemas.config import PLATFORM_FIELDS

    overrides = {}
    for field in PLATFORM_FIELDS:
        value = getattr(platform, field)
        if field in ("topology", "collective_model"):
            value = value.to_string()
        overrides[field] = value
    return overrides


def _ablation_spec(app: "ApplicationModel", platform: Platform,
                   pattern: ComputationPattern, **axes):
    from repro.experiments.spec import ExperimentSpec

    return ExperimentSpec(
        apps=(app.name,),
        patterns=(pattern.value,),
        mechanisms=("full",),
        platform=_platform_overrides(platform),
        chunking={"policy": "fixed-size", "chunk_bytes": 16384,
                  "max_chunks": 64},
        **axes)


def chunk_size_ablation(app: "ApplicationModel",
                        chunk_sizes: Sequence[int] = (4096, 16384, 65536, 262144),
                        platform: Optional[Platform] = None,
                        pattern: ComputationPattern = ComputationPattern.IDEAL) -> Dict[int, float]:
    """Ideal-pattern speedup as a function of the chunk size in bytes.

    Small chunks pipeline better but pay more per-message latency; very large
    chunks degenerate into the original single message.

    The chunking policy shapes the overlap transform itself, so each size is
    one single-point experiment and the (deterministic) trace is regenerated
    per size -- tracing is cheap next to the replays at ablation scale.
    """
    from repro.experiments.runner import run_experiment
    from repro.experiments.spec import ExperimentSpec

    _deprecated("chunk_size_ablation")
    platform = platform or Platform()
    results: Dict[int, float] = {}
    for chunk_bytes in chunk_sizes:
        spec = ExperimentSpec(
            apps=(app.name,),
            patterns=(pattern.value,),
            mechanisms=("full",),
            platform=_platform_overrides(platform),
            chunking={"policy": "fixed-size", "chunk_bytes": chunk_bytes,
                      "max_chunks": 256})
        outcome = run_experiment(spec, apps=[app])
        results[chunk_bytes] = outcome.sweep().points[0].speedup(pattern.value)
    return results


def chunking_policy_ablation(app: "ApplicationModel",
                             policies: Dict[str, ChunkingPolicy],
                             platform: Optional[Platform] = None) -> Dict[str, float]:
    """Ideal-pattern speedup for arbitrary named chunking policies.

    One single-point experiment per policy (the policy shapes the overlap
    transform, so the traced app is regenerated deterministically each time).
    """
    from repro.core.environment import OverlapStudyEnvironment
    from repro.experiments.runner import run_experiment
    from repro.experiments.spec import ExperimentSpec

    _deprecated("chunking_policy_ablation")
    platform = platform or Platform()
    spec = ExperimentSpec(
        apps=(app.name,),
        patterns=(ComputationPattern.IDEAL.value,),
        mechanisms=("full",),
        platform=_platform_overrides(platform))
    results: Dict[str, float] = {}
    for name, policy in policies.items():
        # Arbitrary policy objects cannot be serialised into a spec; inject
        # them through a caller-configured environment instead.
        environment = OverlapStudyEnvironment(platform=platform, chunking=policy)
        outcome = run_experiment(spec, environment=environment, apps=[app])
        results[name] = outcome.sweep().points[0].speedup("ideal")
    return results


def eager_threshold_ablation(app: "ApplicationModel",
                             thresholds: Sequence[int] = (0, 16384, 65536, 1 << 20),
                             platform: Optional[Platform] = None) -> Dict[int, float]:
    """Ideal-pattern speedup as a function of the eager/rendezvous threshold.

    With a tiny threshold every chunk needs a rendezvous with the (not yet
    posted) receive, which delays the early transfers and eats most of the
    overlap; a generous threshold lets chunks flow as soon as they are
    produced.  One spec with an ``eager_thresholds`` axis replays the traced
    run (original and overlapped) at every threshold.
    """
    from repro.experiments.runner import run_experiment

    _deprecated("eager_threshold_ablation")
    platform = platform or Platform()
    spec = _ablation_spec(app, platform, ComputationPattern.IDEAL,
                          eager_thresholds=tuple(thresholds))
    outcome = run_experiment(spec, apps=[app])
    return {cell.dims.eager_threshold: cell.sweep.points[0].speedup("ideal")
            for cell in outcome.cells}


def cpu_speed_ablation(app: "ApplicationModel",
                       cpu_speeds: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
                       platform: Optional[Platform] = None) -> Dict[float, float]:
    """Ideal-pattern speedup as a function of the relative CPU speed.

    Faster CPUs shrink the computation, so a fixed network looks relatively
    slower and the benefit of hiding it grows -- the scaling argument behind
    the paper's conclusion that overlap relaxes network requirements.
    """
    from repro.experiments.runner import run_experiment

    _deprecated("cpu_speed_ablation")
    platform = platform or Platform()
    spec = _ablation_spec(app, platform, ComputationPattern.IDEAL,
                          cpu_speeds=tuple(float(s) for s in cpu_speeds))
    outcome = run_experiment(spec, apps=[app])
    return {cell.dims.cpu_speed: cell.sweep.points[0].speedup("ideal")
            for cell in outcome.cells}
