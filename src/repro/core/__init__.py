"""The paper's core contribution: the overlap study environment.

* :mod:`repro.core.chunking`    -- policies that split a message into the
  independent chunks of the automatic-overlap mechanism;
* :mod:`repro.core.patterns`    -- the *real* (measured) and *ideal*
  (linear) computation-pattern models;
* :mod:`repro.core.mechanisms`  -- which overlapping mechanisms are enabled
  (early sends, late receives, or both);
* :mod:`repro.core.overlap`     -- the trace transformation that turns the
  original trace into the potential (overlapped) trace;
* :mod:`repro.core.environment` -- the facade tying tracing, transformation,
  replay and visualisation together (paper Figure 1);
* :mod:`repro.core.analysis`    -- speedups, bandwidth sweeps, bandwidth
  reduction factors and the Sancho analytical model;
* :mod:`repro.core.executor`    -- expansion of sweeps into self-contained
  replay tasks and their (optionally multi-process) execution;
* :mod:`repro.core.sweeps`      -- parameter-sweep drivers;
* :mod:`repro.core.study`       -- one-stop study objects and reports.
"""

from repro.core.analysis import (
    BandwidthSweep,
    SweepPoint,
    bandwidth_reduction_factor,
    sancho_overlap_bound,
    speedup,
)
from repro.core.chunking import Chunk, ChunkingPolicy, FixedCountChunking, FixedSizeChunking
from repro.core.environment import OverlapStudyEnvironment
from repro.core.executor import SweepExecutor, SweepTask, SweepTaskResult
from repro.core.mechanisms import OverlapMechanism
from repro.core.overlap import OverlapTransformer
from repro.core.patterns import ComputationPattern
from repro.core.study import OverlapStudy, batch_study, run_batch_study
from repro.core.sweeps import run_bandwidth_sweep, run_mechanism_sweep, run_topology_sweep

__all__ = [
    "batch_study",
    "BandwidthSweep",
    "Chunk",
    "ChunkingPolicy",
    "ComputationPattern",
    "FixedCountChunking",
    "FixedSizeChunking",
    "OverlapMechanism",
    "OverlapStudy",
    "OverlapStudyEnvironment",
    "OverlapTransformer",
    "SweepExecutor",
    "SweepPoint",
    "SweepTask",
    "SweepTaskResult",
    "bandwidth_reduction_factor",
    "run_bandwidth_sweep",
    "run_batch_study",
    "run_mechanism_sweep",
    "run_topology_sweep",
    "sancho_overlap_bound",
    "speedup",
]
