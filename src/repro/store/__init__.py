"""Persistent content-addressed storage of experiment cell results.

PR 3 made every experiment cell a pure function of (trace content, variant
derivation, platform point); this package exploits that purity with a
durable cache:

* :mod:`repro.store.keys` -- :class:`CellKey`, the stable SHA-256 address of
  one replay cell (prepared-trace digest + variant derivation + serialized
  platform point + simulator version salt);
* :mod:`repro.store.base` -- the :class:`ResultStore` interface and
  :class:`StoreStats`;
* :mod:`repro.store.filestore` -- :class:`FileResultStore`, the default
  sharded-JSON directory store (atomic writes, safe for concurrent sweep
  workers, picklable into pool initializers);
* :mod:`repro.store.serde` -- the cached-payload schema shared by the
  executor's write-through and the runner's lookup.

The cache-aware runner (:func:`repro.experiments.runner.run_experiment` with
``store=``/``cache_dir=``) consults the store before executing and only
replays missing cells; workers write completed cells back immediately, so
interrupted sweeps resume from where they stopped.
"""

from repro.store.base import ResultStore, StoreStats
from repro.store.filestore import FileResultStore, open_store
from repro.store.keys import (
    ORIGINAL_VARIANT,
    STORE_FORMAT,
    CellKey,
    platform_fingerprint,
    simulator_salt,
    variant_id,
)

__all__ = [
    "CellKey",
    "FileResultStore",
    "ORIGINAL_VARIANT",
    "ResultStore",
    "STORE_FORMAT",
    "StoreStats",
    "open_store",
    "platform_fingerprint",
    "simulator_salt",
    "variant_id",
]
