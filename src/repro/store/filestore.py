"""File-backed result store.

Entries are sharded JSON files under the cache directory::

    <root>/v1/ab/abcdef....json     # first two digest hex chars shard the dir

Every entry embeds its own key and a checksum of the canonical payload JSON,
so ``verify`` can detect truncation, bit-rot or hand-editing without any
index.  Writes go through a temporary file in the destination directory
followed by :func:`os.replace`, which is atomic on POSIX -- concurrent sweep
workers (or concurrent experiment processes sharing one cache) can write the
same entry simultaneously and readers always observe a complete file.  There
is no lock, no daemon and no index to corrupt: the directory *is* the store,
which is what makes it safe to ship the store object to pool workers (it
pickles as its root path).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import StoreError
from repro.store.base import ResultStore, StoreStats
from repro.store.keys import STORE_FORMAT, CellKey, canonical_json
from repro.store.serde import is_valid_payload

#: Length of a SHA-256 hex digest (entry file names are validated against it).
_DIGEST_LENGTH = 64


def _checksum(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class FileResultStore(ResultStore):
    """Content-addressed result store over a plain directory tree."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        try:
            self._format_root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create cache directory "
                             f"{self._format_root}: {exc}") from exc

    @property
    def _format_root(self) -> Path:
        return self.root / f"v{STORE_FORMAT}"

    @property
    def location(self) -> str:
        return str(self.root)

    def _path_of(self, digest: str) -> Path:
        return self._format_root / digest[:2] / f"{digest}.json"

    # -- core operations ---------------------------------------------------
    def get(self, key: CellKey) -> Optional[Dict[str, Any]]:
        payload, _ = self._read(key.digest)
        return payload

    def put(self, key: CellKey, payload: Dict[str, Any]) -> None:
        entry = {
            "format": STORE_FORMAT,
            "key": key.digest,
            "variant": key.variant,
            "trace_digest": key.trace_digest,
            "checksum": _checksum(payload),
            "payload": payload,
        }
        path = self._path_of(key.digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: a unique temp file in the destination
            # directory, then os.replace.  Concurrent writers of the same
            # key race harmlessly -- the entries are identical by
            # construction (same key, pure function) and replace is atomic.
            tmp = path.parent / f".{key.digest}.{os.getpid()}.tmp"
            tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        except OSError as exc:
            raise StoreError(f"cannot write cache entry {path}: {exc}") from exc

    def __contains__(self, key: CellKey) -> bool:
        return self._path_of(key.digest).exists()

    # -- maintenance -------------------------------------------------------
    def keys(self) -> Iterator[str]:
        yield from (path.stem for path in self._entry_paths())

    def stats(self) -> StoreStats:
        entries = 0
        total_bytes = 0
        for path in self._entry_paths():
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return StoreStats(location=self.location, entries=entries,
                          total_bytes=total_bytes)

    def prune(self, older_than_seconds: Optional[float] = None) -> int:
        import time

        cutoff = (time.time() - older_than_seconds
                  if older_than_seconds is not None else None)
        removed = 0
        for path in list(self._entry_paths()):
            try:
                if cutoff is not None and path.stat().st_mtime > cutoff:
                    continue
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def verify(self, delete: bool = False) -> Tuple[int, List[str]]:
        ok = 0
        bad: List[str] = []
        for path in list(self._entry_paths()):
            payload, healthy = self._read(path.stem, path=path)
            if healthy and payload is not None:
                ok += 1
                continue
            bad.append(path.stem)
            if delete:
                with contextlib.suppress(OSError):
                    path.unlink()
        return ok, sorted(bad)

    # -- internals ---------------------------------------------------------
    def _entry_paths(self) -> Iterator[Path]:
        if not self._format_root.is_dir():
            return
        for shard in sorted(self._format_root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                if len(path.stem) == _DIGEST_LENGTH:
                    yield path

    def _read(self, digest: str, path: Optional[Path] = None
              ) -> Tuple[Optional[Dict[str, Any]], bool]:
        """``(payload, healthy)`` -- payload ``None`` on miss or corruption."""
        path = path or self._path_of(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None, True
        except OSError:
            return None, False
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            return None, False
        if not isinstance(entry, dict) or entry.get("key") != digest:
            return None, False
        payload = entry.get("payload")
        if not is_valid_payload(payload):
            return None, False
        if entry.get("checksum") != _checksum(payload):
            return None, False
        return payload, True


def open_store(cache_dir: Union[str, Path, None]) -> Optional[FileResultStore]:
    """A store over ``cache_dir``, or ``None`` when no directory is given."""
    if cache_dir is None:
        return None
    return FileResultStore(cache_dir)
