"""(De)serialisation of cached cell results.

The store holds only the *content* of a replayed cell -- the scalar metrics
that are a pure function of the cell key.  Run-local bookkeeping (task index,
variant display label, grid-point ordinal, worker pid) is deliberately kept
out of the payload and re-bound from the requesting task on a hit, so the
same entry can serve specs that label or order their grids differently.

The helpers are duck-typed against :class:`repro.core.executor.SweepTaskResult`
(no import -- the executor imports this module for write-through).
"""

from __future__ import annotations

from typing import Any, Dict

#: Cached fields, exactly the pure-function-of-the-key scalars of a
#: ``SweepTaskResult``.  ``elapsed_seconds`` is the *producing* replay's wall
#: time: a hit reports what the simulation originally cost, which keeps warm
#: rows identical to the cold rows that produced them.
CACHED_RESULT_FIELDS = (
    "bandwidth_mbps",
    "total_time",
    "communication_fraction",
    "max_compute_time",
    "elapsed_seconds",
    "topology",
    "collective_model",
    "transfers",
    "bytes_transferred",
    "mean_queue_time",
    "mean_transfer_time",
    "intranode_share",
    "collective_transfers",
    "collective_bytes",
    "collective_share",
)


def payload_of(result: Any) -> Dict[str, Any]:
    """The storable payload of one task result (see CACHED_RESULT_FIELDS)."""
    return {field: getattr(result, field) for field in CACHED_RESULT_FIELDS}


def is_valid_payload(payload: Any) -> bool:
    """True if ``payload`` carries every cached field (integrity check)."""
    return (isinstance(payload, dict)
            and all(field in payload for field in CACHED_RESULT_FIELDS))


def result_kwargs(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Constructor kwargs a payload contributes to a ``SweepTaskResult``.

    Unknown keys (from a future format) are dropped rather than passed
    through, so minor forward-compatible payload growth does not break old
    readers; missing keys raise ``KeyError`` (callers treat that as a miss).
    """
    return {field: payload[field] for field in CACHED_RESULT_FIELDS}
