"""Content-addressed cell keys.

A *cell* is one replay unit of an experiment: one trace variant on one fully
specified platform point.  PR 3 made every cell a pure function of its
inputs, so a cell's result can be addressed by a stable digest of exactly
those inputs:

* the digest of the *original* application trace's prepared record stream
  (:meth:`repro.tracing.trace.Trace.digest` -- content, not object identity);
* the canonical *variant derivation*: ``original``, or the (pattern,
  mechanism, chunking-policy) triple that produced the overlapped trace.
  Keying the derivation instead of the overlapped stream lets a fully
  cached variant skip the overlap transformation entirely -- the transform
  is deterministic, so the derivation pins the overlapped content;
* the serialized platform point -- every simulation-relevant
  :data:`~repro.dimemas.config.PLATFORM_FIELDS` field (topology and
  collective-model specs in their compact string forms), *excluding* the
  cosmetic ``name`` label and -- for the exact backends -- the
  ``replay_backend`` / ``max_relative_error`` knobs (``event`` and
  ``compiled`` are bit-identical, so the choice cannot affect simulated
  numbers).  The approximate ``adaptive`` backend *is* keyed together
  with its error bound, so approximate results can never be served from
  -- or poison -- the exact-result cache; and
* a simulator version salt, so any release that could change simulated
  numbers invalidates the whole store instead of serving stale results.

Two keys are equal iff their canonical JSON payloads are equal; the digest
is the SHA-256 of that payload.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro._version import __version__
from repro.dimemas.config import PLATFORM_FIELDS
from repro.dimemas.platform import Platform

#: Bump to invalidate every stored result (schema or semantics change).
#: 2: adaptive fast-forward replays flush network statistics in canonical
#: (src, dst, tag, pair) order, changing ``mean_transfer_time`` bytes.
STORE_FORMAT = 2

#: Canonical variant id of the non-overlapped execution.
ORIGINAL_VARIANT = "original"


def simulator_salt() -> str:
    """The version salt mixed into every cell key."""
    return f"{STORE_FORMAT}:{__version__}"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def platform_fingerprint(platform: Platform) -> Dict[str, Any]:
    """The simulation-relevant fields of a platform, canonically serialized.

    Every :data:`PLATFORM_FIELDS` entry except ``name`` participates,
    with one backend-dependent wrinkle: for the exact backends
    (``event``/``compiled``) the ``replay_backend`` and
    ``max_relative_error`` knobs are skipped -- those backends produce
    bit-identical results by contract (pinned by the backend golden
    tests), so a sweep run with ``compiled`` shares its cache with an
    ``event`` run of the same physics.  The approximate ``adaptive``
    backend keeps both knobs in the fingerprint: its numbers may differ
    from the exact ones (and between error bounds), so its cells must
    never alias an exact cell's address.
    """
    approximate = platform.replay_backend == "adaptive"
    fingerprint: Dict[str, Any] = {}
    for field in PLATFORM_FIELDS:
        if field == "name":
            continue
        if field in ("replay_backend", "max_relative_error") and not approximate:
            continue
        if field == "topology":
            fingerprint[field] = platform.topology.to_string()
        elif field == "collective_model":
            fingerprint[field] = platform.collective_model.to_string()
        else:
            fingerprint[field] = getattr(platform, field)
    return fingerprint


def variant_id(pattern: Optional[str] = None, mechanism: Optional[str] = None,
               chunking: Optional[str] = None) -> str:
    """The canonical derivation id of a trace variant.

    With no arguments this is the original (non-overlapped) trace; an
    overlapped variant is identified by the computation pattern, the overlap
    mechanism and the chunking policy's :meth:`describe` string -- the three
    inputs that (deterministically) produced it from the original trace.
    """
    if pattern is None and mechanism is None:
        return ORIGINAL_VARIANT
    return (f"pattern={pattern},mechanism={mechanism},"
            f"chunking={chunking or 'default'}")


@dataclass(frozen=True)
class CellKey:
    """The content address of one replay cell.

    ``digest`` is the address; ``trace_digest`` and ``variant`` are kept for
    provenance reporting (``run --dry-run``, per-cell hit/miss tables).
    """

    digest: str
    trace_digest: str
    variant: str

    @classmethod
    def compute(cls, trace_digest: str, platform: Platform, variant: str,
                salt: Optional[str] = None) -> "CellKey":
        """Derive the key of (trace content, variant derivation, platform)."""
        payload = {
            "salt": salt if salt is not None else simulator_salt(),
            "trace": trace_digest,
            "variant": variant,
            "platform": platform_fingerprint(platform),
        }
        digest = hashlib.sha256(
            canonical_json(payload).encode("utf-8")).hexdigest()
        return cls(digest=digest, trace_digest=trace_digest, variant=variant)

    def short(self) -> str:
        """A 12-character prefix for tables and logs."""
        return self.digest[:12]
