"""The persistent result-store interface.

A :class:`ResultStore` maps content-addressed :class:`~repro.store.keys.CellKey`
digests to the scalar metrics of one replayed experiment cell.  Because every
cell is a pure function of its key's inputs (prepared-trace stream, platform
point, variant derivation, simulator version salt), a stored payload can be
returned for *any* later run that produces the same key -- across processes,
sweeps and specs -- without replaying the cell.

Implementations must be safe for concurrent writers: sweep workers write
results back through the store as they finish, so an interrupted sweep leaves
every completed cell behind and a re-run only replays the unfinished ones.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.store.keys import CellKey


@dataclass(frozen=True)
class StoreStats:
    """One store's size summary (the ``repro-overlap cache stats`` payload)."""

    location: str
    entries: int
    total_bytes: int

    def as_dict(self) -> Dict[str, Any]:
        return {"location": self.location, "entries": self.entries,
                "total_bytes": self.total_bytes}


class ResultStore(ABC):
    """Persistent, content-addressed map from cell keys to result payloads.

    Payloads are plain JSON-serialisable dicts (see :mod:`repro.store.serde`).
    ``get`` returns ``None`` for missing *or unreadable* entries -- a corrupt
    entry behaves like a miss, so a damaged cache degrades to recomputation
    instead of failing the experiment (``verify`` reports the damage).
    """

    @abstractmethod
    def get(self, key: CellKey) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or ``None``."""

    @abstractmethod
    def put(self, key: CellKey, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomically replacing any entry)."""

    @abstractmethod
    def __contains__(self, key: CellKey) -> bool:
        """True if an entry exists under ``key`` (no payload validation)."""

    @abstractmethod
    def keys(self) -> Iterator[str]:
        """Digests of every stored entry (unspecified order)."""

    @abstractmethod
    def stats(self) -> StoreStats:
        """Entry count and on-disk size of the store."""

    @abstractmethod
    def prune(self, older_than_seconds: Optional[float] = None) -> int:
        """Delete entries (all, or only those older than the given age).

        Returns the number of entries removed.
        """

    @abstractmethod
    def verify(self, delete: bool = False) -> Tuple[int, List[str]]:
        """Check every entry's integrity.

        Returns ``(ok_count, bad_digests)``; with ``delete`` the corrupt
        entries are removed as they are found.
        """

    # -- conveniences shared by all implementations ------------------------
    def get_many(self, keys: Iterable[CellKey]
                 ) -> Dict[str, Dict[str, Any]]:
        """``{digest: payload}`` for every key that hits."""
        found: Dict[str, Dict[str, Any]] = {}
        for key in keys:
            payload = self.get(key)
            if payload is not None:
                found[key.digest] = payload
        return found

    def close(self) -> None:
        """Release any resources (no-op for stateless stores)."""
