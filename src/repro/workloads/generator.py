"""Deterministic pseudo-random workload generation.

The generator produces application models with randomised (but seeded and
therefore reproducible) iteration structures: varying burst lengths, message
sizes, neighbour sets and occasional collectives.  These workloads exercise
the tracing tool, the overlap transformation and the replay engine on
structures that the hand-written paper applications do not cover, which is
exactly what the property-based tests need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List

from repro.apps.base import ApplicationModel
from repro.errors import ConfigurationError
from repro.tracing.context import RankContext


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a generated workload."""

    seed: int = 0
    num_ranks: int = 4
    iterations: int = 3
    max_message_bytes: int = 100_000
    max_instructions: float = 2.0e6
    collective_probability: float = 0.3
    neighbor_count: int = 2

    def __post_init__(self) -> None:
        if self.num_ranks < 2:
            raise ConfigurationError("a workload needs at least 2 ranks")
        if self.iterations < 1:
            raise ConfigurationError("a workload needs at least 1 iteration")
        if self.max_message_bytes < 1 or self.max_instructions <= 0:
            raise ConfigurationError("message and burst sizes must be positive")
        if not 0.0 <= self.collective_probability <= 1.0:
            raise ConfigurationError("collective_probability must be in [0, 1]")
        if not 1 <= self.neighbor_count < self.num_ranks:
            raise ConfigurationError(
                "neighbor_count must be between 1 and num_ranks - 1")


class RandomExchangeWorkload(ApplicationModel):
    """A seeded random neighbour-exchange application.

    The per-iteration structure (burst lengths, message sizes, whether a
    collective happens) is drawn from a :class:`random.Random` seeded from
    the spec, and the draws depend only on the iteration index -- never on
    the rank -- so all ranks agree on the communication schedule and the
    resulting trace always matches.
    """

    name = "random-exchange"

    def __init__(self, spec: WorkloadSpec):
        super().__init__(spec.num_ranks, spec.iterations)
        self.spec = spec

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update({
            "seed": self.spec.seed,
            "max_message_bytes": self.spec.max_message_bytes,
            "neighbor_count": self.spec.neighbor_count,
        })
        return info

    def _schedule(self) -> List[Dict[str, Any]]:
        """The per-iteration schedule shared by all ranks."""
        rng = random.Random(self.spec.seed)
        schedule = []
        for _ in range(self.spec.iterations):
            schedule.append({
                "instructions": rng.uniform(0.2, 1.0) * self.spec.max_instructions,
                "message_bytes": rng.randint(1, self.spec.max_message_bytes),
                "offsets": [rng.randint(1, self.spec.num_ranks - 1)
                            for _ in range(self.spec.neighbor_count)],
                "collective": rng.random() < self.spec.collective_probability,
                "operation": rng.choice(["barrier", "allreduce", "bcast"]),
            })
        return schedule

    def run(self, ctx: RankContext) -> None:
        rank = ctx.rank
        size = self.num_ranks
        for index, step in enumerate(self._schedule()):
            offsets = sorted(set(step["offsets"]))
            send_peers = [(rank + offset) % size for offset in offsets]
            recv_peers = [(rank - offset) % size for offset in offsets]
            send_buffers = [
                ctx.buffer(f"out_{index}_{offset}", step["message_bytes"])
                for offset in offsets
            ]
            recv_buffers = [
                ctx.buffer(f"in_{index}_{offset}", step["message_bytes"])
                for offset in offsets
            ]
            self.stencil_compute(ctx, step["instructions"],
                                 consume=recv_buffers, produce=send_buffers)
            sends = [(peer, buffer, 100 + index)
                     for peer, buffer in zip(send_peers, send_buffers)]
            recvs = [(peer, buffer, 100 + index)
                     for peer, buffer in zip(recv_peers, recv_buffers)]
            self.halo_exchange(ctx, sends, recvs)
            if step["collective"]:
                if step["operation"] == "barrier":
                    ctx.barrier()
                elif step["operation"] == "allreduce":
                    ctx.allreduce(count=1)
                else:
                    ctx.bcast(count=4)


def generate_workload(seed: int = 0, num_ranks: int = 4, iterations: int = 3,
                      **overrides: Any) -> RandomExchangeWorkload:
    """Convenience factory for a seeded random workload."""
    spec = WorkloadSpec(seed=seed, num_ranks=num_ranks, iterations=iterations,
                        **overrides)
    return RandomExchangeWorkload(spec)
