"""Workload generators for tests and benchmarks.

Besides the six paper applications, the benchmark harness and the
property-based tests need families of synthetic workloads whose structure
can be varied programmatically (number of ranks, communication intensity,
random-but-reproducible exchange patterns).
"""

from repro.workloads.generator import RandomExchangeWorkload, WorkloadSpec, generate_workload

__all__ = [
    "RandomExchangeWorkload",
    "WorkloadSpec",
    "generate_workload",
]
