"""Command-line interface of the overlap study environment.

The CLI exposes the full pipeline from the terminal::

    repro-overlap list-apps
    repro-overlap trace    --app nas-bt --output bt.json
    repro-overlap check    --app nas-bt --worst-case
    repro-overlap study    --app sweep3d --bandwidth 250 --gantt
    repro-overlap sweep    --app alya --min-bandwidth 2 --max-bandwidth 20000
    repro-overlap run      --spec experiment.toml --csv rows.csv
    repro-overlap simulate --trace bt.json --bandwidth 100 --prv bt.prv

``study``, ``sweep`` and ``run`` are all fronts for the same declarative
experiment API (:mod:`repro.experiments`): the first two build an
:class:`~repro.experiments.spec.ExperimentSpec` from their flags, ``run``
loads one from a JSON/TOML file.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro._version import __version__
from repro.apps.registry import APPLICATIONS, PAPER_IDEAL_SPEEDUP_PERCENT
from repro.core.analysis import geometric_bandwidths
from repro.core.environment import OverlapStudyEnvironment
from repro.core.chunking import FixedCountChunking, FixedSizeChunking
from repro.core.overlap import resolve_overlap_request
from repro.core.reporting import format_table, network_table, sweep_table, topology_table
from repro.dimemas.collectives import (
    COLLECTIVE_MODELS,
    CollectiveSpec,
    split_collective_list,
)
from repro.dimemas.platform import Platform
from repro.dimemas.topology import TOPOLOGIES, TopologySpec, split_topology_list
from repro.dimemas.simulator import DimemasSimulator
from repro.errors import ReproError
from repro.experiments import (
    Experiment,
    ExperimentSpec,
    preview_experiment,
    run_experiment,
)
from repro.analysis import AnalysisReport, analyze_trace
from repro.paraver.prv import export_prv
from repro.store import FileResultStore, open_store
from repro.tracing.trace import Trace

#: Environment variable supplying the default ``--cache-dir``.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-overlap",
        description="Simulation environment for studying overlap of "
                    "communication and computation (ISPASS 2010 reproduction)")
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-apps", help="list the available application models")

    trace = subparsers.add_parser("trace", help="trace an application model")
    _add_app_arguments(trace)
    trace.add_argument("--output", required=True, help="trace file to write (JSON)")
    trace.add_argument("--overlap", choices=["real", "ideal"],
                       help="also apply the overlap transformation with this pattern")
    trace.add_argument("--mechanism", default=None,
                       choices=["full", "early-send", "late-receive", "none"],
                       help="overlapping mechanism for --overlap (default: full)")

    check = subparsers.add_parser(
        "check", help="statically analyze traces for MPI correctness "
                      "(tracelint) without replaying anything")
    target = check.add_mutually_exclusive_group(required=True)
    target.add_argument("--app", choices=sorted(APPLICATIONS),
                        help="trace and analyze one application model")
    target.add_argument("--all-apps", action="store_true",
                        help="trace and analyze every registered application")
    target.add_argument("--spec",
                        help="analyze every trace an experiment spec file "
                             "would replay (apps x variants, at the grid's "
                             "eager thresholds)")
    target.add_argument("--trace", help="analyze a trace file written by 'trace'")
    check.add_argument("--ranks", type=int, default=16,
                       help="number of MPI ranks (--app/--all-apps)")
    check.add_argument("--iterations", type=int, default=None,
                       help="number of iterations (model default if omitted)")
    check.add_argument("--seed", type=int, default=None,
                       help="workload seed (generated workloads only)")
    check.add_argument("--chunk-bytes", type=int, default=16384,
                       help="chunk size used when --mechanisms transforms "
                            "overlapped variants")
    check.add_argument("--chunk-count", type=int, default=None,
                       help="fixed chunk count instead of a fixed chunk size")
    check.add_argument("--eager-threshold", type=int, default=65536,
                       help="eager/rendezvous switch-over size the deadlock "
                            "search assumes (bytes)")
    check.add_argument("--worst-case", action="store_true",
                       help="additionally run the deadlock search with every "
                            "send forced onto the rendezvous protocol (clean "
                            "here means deadlock-free at any threshold)")
    check.add_argument("--mechanisms",
                       help="comma-separated overlap mechanisms (e.g. "
                            "'full,early-send'): also analyze the real- and "
                            "ideal-pattern overlapped variants of each app")
    check.add_argument("--format", dest="output_format",
                       choices=["text", "json"], default="text",
                       help="report format (exit code is 0 clean, 1 "
                            "warnings, 2 errors either way)")

    study = subparsers.add_parser(
        "study", help="trace, transform and replay one application")
    _add_app_arguments(study)
    _add_platform_arguments(study)
    study.add_argument("--gantt", action="store_true",
                       help="print the side-by-side ASCII Gantt comparison")
    study.add_argument("--mechanism", default="full",
                       choices=["full", "early-send", "late-receive"])
    _add_jobs_argument(study)
    _add_cache_arguments(study)
    study.add_argument("--profile", metavar="PATH", default=None,
                       help="run the replay under cProfile, dump the raw "
                            "stats to PATH and print the top 20 functions "
                            "by cumulative time to stderr")

    sweep = subparsers.add_parser(
        "sweep", help="speedup-versus-bandwidth sweep for one application")
    _add_app_arguments(sweep)
    _add_platform_arguments(sweep)
    sweep.add_argument("--min-bandwidth", type=float, default=2.0,
                       help="lowest bandwidth of the sweep (MB/s)")
    sweep.add_argument("--max-bandwidth", type=float, default=20000.0,
                       help="highest bandwidth of the sweep (MB/s)")
    sweep.add_argument("--samples", type=int, default=9,
                       help="number of (log-spaced) bandwidth samples")
    sweep.add_argument("--topologies",
                       help="comma-separated topology specs to compare "
                            "(e.g. 'flat,tree:radix=8,torus'); replays the "
                            "same traced run on every topology and prints "
                            "per-topology columns")
    sweep.add_argument("--collective-models",
                       help="comma-separated collective-model specs to "
                            "compare (e.g. 'analytical,decomposed' or "
                            "'decomposed:bcast=ring'); replays the same "
                            "traced run under every model and prints "
                            "per-model columns")
    _add_jobs_argument(sweep)
    _add_cache_arguments(sweep)
    sweep.add_argument("--profile", metavar="PATH", default=None,
                       help="run the replay under cProfile, dump the raw "
                            "stats to PATH and print the top 20 functions "
                            "by cumulative time to stderr")

    run = subparsers.add_parser(
        "run", help="execute a declarative experiment spec file (JSON/TOML)")
    run.add_argument("--spec", required=True,
                     help="experiment spec file written by "
                          "ExperimentSpec.to_file (.json or .toml)")
    run.add_argument("--jobs", type=int, default=None,
                     help="override the spec's worker count "
                          "(1 = serial, 0 = all cores)")
    run.add_argument("--collect-timelines", action="store_true",
                     help="keep full per-replay timelines on the result "
                          "(sweeps default to the fast timeline-free replay "
                          "path; scalar results are identical either way)")
    run.add_argument("--json", dest="json_output",
                     help="write the tidy result rows (plus the spec) as JSON")
    run.add_argument("--csv", dest="csv_output",
                     help="write the tidy result rows as CSV")
    run.add_argument("--quiet", action="store_true",
                     help="only print the summary, not the per-cell tables")
    run.add_argument("--dry-run", action="store_true",
                     help="print the expanded grid (cell keys, cached vs "
                          "missing counts, diagnostic counts) without "
                          "simulating anything")
    run.add_argument("--no-precheck", action="store_true",
                     help="skip the static trace analysis that rejects "
                          "defective traces before any replay starts")
    run.add_argument("--profile", metavar="PATH", default=None,
                     help="run the replay under cProfile, dump the raw "
                          "stats to PATH and print the top 20 functions "
                          "by cumulative time to stderr")
    _add_cache_arguments(run)

    cache = subparsers.add_parser(
        "cache", help="inspect or maintain the persistent result cache")
    cache.add_argument("action", choices=["stats", "prune", "verify"],
                       help="stats: entry count and size; prune: delete "
                            "entries; verify: check entry integrity")
    cache.add_argument("--cache-dir", default=None,
                       help="result cache directory "
                            f"(default: ${CACHE_DIR_ENV})")
    cache.add_argument("--older-than-days", type=float, default=None,
                       help="prune only entries older than this many days "
                            "(default: prune everything)")
    cache.add_argument("--delete", action="store_true",
                       help="verify: also delete the corrupt entries found")

    simulate = subparsers.add_parser(
        "simulate", help="replay a previously saved trace file")
    _add_platform_arguments(simulate)
    simulate.add_argument("--trace", required=True, help="trace file written by 'trace'")
    simulate.add_argument("--prv", help="also export the timeline as a Paraver .prv file")
    simulate.add_argument("--profile", metavar="PATH", default=None,
                          help="run the replay under cProfile, dump the raw "
                               "stats to PATH and print the top 20 functions "
                               "by cumulative time to stderr")

    profile = subparsers.add_parser(
        "profile", help="print the statistics of a saved trace file")
    profile.add_argument("--trace", required=True, help="trace file written by 'trace'")
    profile.add_argument("--compare", help="second trace file (e.g. the overlapped "
                                           "variant) for an expansion report")

    return parser


def _add_app_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", required=True, choices=sorted(APPLICATIONS),
                        help="application model to use")
    parser.add_argument("--ranks", type=int, default=16, help="number of MPI ranks")
    parser.add_argument("--iterations", type=int, default=None,
                        help="number of iterations (model default if omitted)")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload seed (generated workloads such as "
                             "'random-exchange' only)")
    parser.add_argument("--chunk-bytes", type=int, default=16384,
                        help="chunk size of the overlap transformation (bytes)")
    parser.add_argument("--chunk-count", type=int, default=None,
                        help="use a fixed chunk count instead of a fixed chunk size")


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the replays "
                             "(1 = serial, 0 = all cores); results are "
                             "identical to the serial run")


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result cache directory: cached "
                             "cells are returned without simulating, "
                             "missing cells are replayed and stored "
                             f"(default: ${CACHE_DIR_ENV} if set, else no "
                             "caching); results are identical either way")
    parser.add_argument("--no-cache", action="store_true",
                        help=f"disable the result cache even when "
                             f"${CACHE_DIR_ENV} is set")


def _resolve_store(args: argparse.Namespace,
                   required: bool = False) -> Optional[FileResultStore]:
    """The result store the cache flags select (honouring the env default)."""
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None) or os.environ.get(CACHE_DIR_ENV)
    if cache_dir is None:
        if required:
            raise ReproError(
                f"no cache directory: pass --cache-dir or set ${CACHE_DIR_ENV}")
        return None
    return open_store(cache_dir)


def _parse_topology(text: str) -> TopologySpec:
    """Argparse type for topology specs (bad specs become usage errors)."""
    try:
        return TopologySpec.parse(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _parse_collective_model(text: str) -> CollectiveSpec:
    """Argparse type for collective-model specs."""
    try:
        return CollectiveSpec.parse(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _add_platform_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bandwidth", type=float, default=250.0,
                        help="network bandwidth in MB/s (0 = ideal network)")
    parser.add_argument("--latency", type=float, default=5.0e-6,
                        help="network latency in seconds")
    parser.add_argument("--buses", type=int, default=0,
                        help="number of network buses (0 = unlimited)")
    parser.add_argument("--cpu-speed", type=float, default=1.0,
                        help="relative CPU speed of the target machine")
    parser.add_argument("--eager-threshold", type=int, default=65536,
                        help="eager/rendezvous switch-over size in bytes")
    parser.add_argument("--topology", default="flat", type=_parse_topology,
                        help="interconnect topology spec: "
                             f"{'|'.join(sorted(TOPOLOGIES))}, optionally "
                             "parameterised like 'tree:radix=8,links=2' or "
                             "'torus:torus_width=4'")
    parser.add_argument("--collective-model", default="analytical",
                        type=_parse_collective_model,
                        help="collective cost model: "
                             f"{'|'.join(sorted(COLLECTIVE_MODELS))}, the "
                             "latter optionally with per-operation "
                             "algorithm overrides like "
                             "'decomposed:bcast=ring,allreduce=binomial'")
    parser.add_argument("--processors-per-node", type=int, default=1,
                        help="ranks mapped onto each node (consecutive "
                             "ranks fill nodes; same-node messages bypass "
                             "the network)")
    parser.add_argument("--intranode-bandwidth", type=float, default=2000.0,
                        help="intra-node bandwidth in MB/s (0 = infinite)")
    parser.add_argument("--intranode-latency", type=float, default=1.0e-6,
                        help="intra-node latency in seconds")
    parser.add_argument("--replay-backend", default="event",
                        choices=["event", "compiled", "adaptive"],
                        help="replay implementation: 'event' walks every "
                             "record through the DES, 'compiled' "
                             "batch-advances contention-free stretches "
                             "(bit-identical results, faster), 'adaptive' "
                             "fast-forwards contention-free windows in "
                             "closed form (bit-identical where proven, "
                             "bounded-error elsewhere, fastest)")
    parser.add_argument("--max-relative-error", type=float, default=0.01,
                        help="relative-error bound for the 'adaptive' "
                             "backend's contended windows; 0 forbids "
                             "approximation (exact fallback); ignored by "
                             "the exact backends")


# -- spec construction from flags ---------------------------------------------

def _app_options(args: argparse.Namespace) -> dict:
    options = {"num_ranks": args.ranks}
    if args.iterations is not None:
        options["iterations"] = args.iterations
    if getattr(args, "seed", None) is not None:
        options["seed"] = args.seed
    return options


def _platform_options(args: argparse.Namespace) -> dict:
    return {
        "name": "cli",
        "bandwidth_mbps": args.bandwidth,
        "latency": args.latency,
        "num_buses": args.buses,
        "relative_cpu_speed": args.cpu_speed,
        "eager_threshold": args.eager_threshold,
        "topology": args.topology.to_string(),
        "collective_model": args.collective_model.to_string(),
        "processors_per_node": args.processors_per_node,
        "intranode_bandwidth_mbps": args.intranode_bandwidth,
        "intranode_latency": args.intranode_latency,
        "replay_backend": args.replay_backend,
        "max_relative_error": args.max_relative_error,
    }


def _experiment_from_args(args: argparse.Namespace) -> Experiment:
    """The spec builder every replaying subcommand starts from."""
    builder = (Experiment.for_app(args.app, **_app_options(args))
               .platform(**_platform_options(args))
               .jobs(args.jobs))
    if getattr(args, "chunk_count", None):
        builder.chunk_count(args.chunk_count)
    else:
        builder.chunk_bytes(getattr(args, "chunk_bytes", 16384))
    return builder


def _make_platform(args: argparse.Namespace) -> Platform:
    if not hasattr(args, "bandwidth"):
        return Platform()
    return Platform(**_platform_options(args))


# -- sub-commands ------------------------------------------------------------

def _cmd_list_apps(_args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(APPLICATIONS):
        paper = PAPER_IDEAL_SPEEDUP_PERCENT.get(name)
        rows.append([name, "yes" if paper is not None else "no",
                     f"{paper:.0f}%" if paper is not None else "-"])
    print(format_table(["application", "in paper evaluation", "paper ideal speedup"],
                       rows, title="available application models"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.apps.registry import create_application

    if args.mechanism is not None and not args.overlap:
        raise ReproError(
            "--mechanism selects the overlap mechanism and needs --overlap; "
            "add e.g. '--overlap ideal' or drop --mechanism")
    environment = OverlapStudyEnvironment(
        chunking=FixedCountChunking(count=args.chunk_count)
        if args.chunk_count else FixedSizeChunking(chunk_bytes=args.chunk_bytes))
    app = create_application(args.app, **_app_options(args))
    trace = environment.trace(app)
    if args.overlap:
        pattern, mechanism = resolve_overlap_request(
            args.overlap, args.mechanism or "full")
        trace = environment.overlap(trace, pattern=pattern, mechanism=mechanism)
    path = trace.save(args.output)
    info = trace.describe()
    print(f"wrote {path} ({info['records']} records, "
          f"{info['total_messages']} messages, {info['total_bytes']} bytes)")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.experiments.plan import analyze_tasks, plan_experiment

    if args.spec:
        plan = plan_experiment(ExperimentSpec.from_file(args.spec))
        report = analyze_tasks(plan, plan.tasks)
    elif args.trace:
        report = analyze_trace(Trace.load(args.trace),
                               eager_threshold=args.eager_threshold,
                               worst_case=args.worst_case, source=args.trace)
    else:
        report = _check_apps(args)
    if args.output_format == "json":
        sys.stdout.write(report.to_json())
    else:
        print(report.render_text())
    return report.exit_code()


def _check_apps(args: argparse.Namespace) -> AnalysisReport:
    """``check --app``/``--all-apps``: originals plus requested variants."""
    from repro.apps.registry import create_application

    names = sorted(APPLICATIONS) if args.all_apps else [args.app]
    mechanisms = ([label.strip() for label in args.mechanisms.split(",")]
                  if args.mechanisms else [])
    environment = OverlapStudyEnvironment(
        chunking=FixedCountChunking(count=args.chunk_count)
        if args.chunk_count else FixedSizeChunking(chunk_bytes=args.chunk_bytes))
    reports = []
    for name in names:
        app = create_application(name, **_app_options(args))
        original = environment.trace(app)
        reports.append(analyze_trace(
            original, eager_threshold=args.eager_threshold,
            worst_case=args.worst_case, source=name))
        for label in mechanisms:
            for pattern_label in ("real", "ideal"):
                pattern, mechanism = resolve_overlap_request(
                    pattern_label, label)
                variant = environment.overlap(
                    original, pattern=pattern, mechanism=mechanism)
                reports.append(analyze_trace(
                    variant, eager_threshold=args.eager_threshold,
                    worst_case=args.worst_case,
                    source=f"{name}:{pattern.value}+{mechanism.label}"))
    return AnalysisReport.merged(reports, metadata={"apps": names})


def _cmd_study(args: argparse.Namespace) -> int:
    spec = _experiment_from_args(args).mechanism(args.mechanism).build()
    store = _resolve_store(args)
    if store is not None:
        print("note: studies keep full timelines, which the result cache "
              "does not hold -- replaying uncached")
    result = _profiled(
        args.profile,
        lambda: run_experiment(spec, full_results=True, store=store))
    study = result.studies()[args.app]
    print(study.summary())
    if args.gantt:
        print()
        print(study.gantt("ideal"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    builder = _experiment_from_args(args)
    builder.bandwidths(geometric_bandwidths(
        args.min_bandwidth, args.max_bandwidth, args.samples))
    store = _resolve_store(args)
    if args.topologies:
        builder.topologies(split_topology_list(args.topologies))
    if args.collective_models:
        builder.collective_models(split_collective_list(args.collective_models))

    def replay():
        return _profiled(
            args.profile,
            lambda: run_experiment(builder.build(), store=store))

    if args.topologies and args.collective_models:
        return _print_grid_sweep(replay())
    if args.topologies:
        return _print_topology_sweep(replay())
    if args.collective_models:
        return _print_collective_sweep(replay())
    result = replay()
    sweep = result.sweep()
    print(sweep_table(sweep))
    print()
    print(network_table(sweep))
    print()
    wall = sweep.metadata.get("replay_wall_seconds")
    if wall is not None:
        print(f"replayed {len(sweep.points) * len(sweep.variants)} tasks "
              f"with {sweep.metadata.get('jobs', 1)} worker(s) "
              f"in {wall:.2f} s")
    factor = sweep.bandwidth_reduction_factor("ideal")
    peak_bandwidth, peak = sweep.peak_speedup("ideal")
    print(f"peak ideal-pattern speedup: {peak:.3f}x at {peak_bandwidth:.1f} MB/s")
    if factor is not None:
        print(f"bandwidth reduction factor at the highest swept bandwidth: {factor:.1f}x")
    return 0


def _print_collective_sweep(result) -> int:
    sweeps = result.by_collective_model()
    print(topology_table(sweeps, dimension="collective model"))
    for name, sweep in sweeps.items():
        print()
        # The network-table title only names app/variant/topology, which
        # are identical across collective models -- label each table.
        print(f"-- collective model: {name}")
        print(network_table(sweep))
    print()
    for name, sweep in sweeps.items():
        peak_bandwidth, peak = sweep.peak_speedup("ideal")
        share = sweep.points[-1].network_stat("original", "collective_share")
        print(f"{name}: peak ideal-pattern speedup {peak:.3f}x "
              f"at {peak_bandwidth:.1f} MB/s, "
              f"collective byte share {share:.3f}")
    return 0


def _print_grid_sweep(result) -> int:
    """Per-cell tables when both topologies and collective models are swept."""
    for cell in result.cells:
        dims = cell.dims.as_dict()
        print(f"-- topology={dims['topology']}, "
              f"collective_model={dims['collective_model']}")
        print(sweep_table(cell.sweep))
        print()
    print(result.summary())
    return 0


def _print_topology_sweep(result) -> int:
    sweeps = result.by_topology()
    print(topology_table(sweeps))
    for _name, sweep in sweeps.items():
        print()
        print(network_table(sweep))
    print()
    for name, sweep in sweeps.items():
        peak_bandwidth, peak = sweep.peak_speedup("ideal")
        print(f"{name}: peak ideal-pattern speedup {peak:.3f}x "
              f"at {peak_bandwidth:.1f} MB/s")
    first = next(iter(sweeps.values()))
    wall = first.metadata.get("replay_wall_seconds")
    if wall is not None:
        tasks = sum(len(sweep.points) for sweep in sweeps.values()) * \
            len(first.variants)
        print(f"replayed {tasks} tasks with {first.metadata.get('jobs', 1)} "
              f"worker(s) in {wall:.2f} s")
    return 0


def _profiled(path, call):
    """Run ``call()`` under :mod:`cProfile` when ``path`` is set.

    Dumps the raw profiler stats to ``path`` (loadable with
    ``python -m pstats``) and prints the top 20 functions by cumulative
    time to stderr, keeping stdout free for the regular result tables.
    """
    if not path:
        return call()
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = call()
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        print(f"wrote cProfile stats to {path}; top 20 by cumulative time:",
              file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)
    return result


def _cmd_run(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.from_file(args.spec)
    if args.jobs is not None:
        spec = spec.with_jobs(args.jobs)
    if args.collect_timelines:
        spec = spec.with_collect_timelines()
    described = spec.describe()
    print(f"loaded {args.spec}: {described['apps']} app(s) x "
          f"{described['grid_points']} grid point(s) x "
          f"{described['variants']} variant(s) = "
          f"{described['replays']} replays (jobs={spec.jobs})")
    store = _resolve_store(args)
    if args.dry_run:
        return _print_dry_run(spec, store)
    result = _profiled(
        args.profile,
        lambda: run_experiment(spec, store=store,
                               precheck=not args.no_precheck))
    if not args.quiet:
        for cell in result.cells:
            print()
            coordinate = ", ".join(f"{key}={value}"
                                   for key, value in cell.dims.as_dict().items())
            print(f"-- {cell.app} [{coordinate}]")
            print(sweep_table(cell.sweep))
    print()
    print(result.summary())
    if args.json_output:
        result.to_json(args.json_output)
        print(f"wrote tidy rows to {args.json_output}")
    if args.csv_output:
        result.to_csv(args.csv_output)
        print(f"wrote tidy rows to {args.csv_output}")
    return 0


def _print_dry_run(spec: ExperimentSpec,
                   store: Optional[FileResultStore]) -> int:
    """``run --dry-run``: the expanded grid and its cache status, no replays."""
    preview = preview_experiment(spec, store=store)
    rows = [[key.short(), _task_cell_label(task), preview.statuses[task.index]]
            for task, key in zip(preview.plan.tasks, preview.keys)]
    print(format_table(["cell key", "task", "status"], rows,
                       title="expanded grid (dry run -- nothing simulated)"))
    print()
    if store is None:
        print(f"{len(rows)} task(s); no cache attached "
              f"(pass --cache-dir or set ${CACHE_DIR_ENV})")
    else:
        print(f"{len(rows)} task(s): {preview.hits} cached, "
              f"{preview.misses} missing ({store.location})")
    if preview.lint is not None:
        print(f"static analysis of the original traces: "
              f"{preview.lint.summary()} "
              f"(variants are checked by 'run' before replaying)")
    return 0


def _task_cell_label(task) -> str:
    platform = task.platform
    return (f"{task.label} "
            f"[{platform.topology.to_string()}, "
            f"{platform.collective_model.to_string()}, "
            f"ppn={platform.processors_per_node}]")


def _cmd_cache(args: argparse.Namespace) -> int:
    store = _resolve_store(args, required=True)
    if args.action == "stats":
        stats = store.stats()
        rows = [["location", stats.location],
                ["entries", stats.entries],
                ["total bytes", stats.total_bytes]]
        print(format_table(["metric", "value"], rows, title="result cache"))
        return 0
    if args.action == "prune":
        older_than = (args.older_than_days * 86400.0
                      if args.older_than_days is not None else None)
        removed = store.prune(older_than_seconds=older_than)
        scope = (f"older than {args.older_than_days:g} day(s)"
                 if args.older_than_days is not None else "all entries")
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
              f"({scope}) from {store.location}")
        return 0
    ok, bad = store.verify(delete=args.delete)
    print(f"verified {store.location}: {ok} entr{'y' if ok == 1 else 'ies'} "
          f"ok, {len(bad)} corrupt")
    for digest in bad:
        print(f"  corrupt: {digest}" + (" (deleted)" if args.delete else ""))
    return 0 if not bad else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    platform = _make_platform(args)
    result = _profiled(args.profile,
                       lambda: DimemasSimulator(platform).simulate(trace))
    rows = [[key, value] for key, value in sorted(result.describe().items())]
    print(format_table(["metric", "value"], rows,
                       title=f"replay of {args.trace} on {platform.bandwidth_mbps} MB/s"))
    if args.prv:
        path = export_prv(result.timeline, args.prv)
        print(f"wrote Paraver trace {path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.tracing.stats import expansion_report, profile_trace

    trace = Trace.load(args.trace)
    profile = profile_trace(trace)
    rows = [
        ["ranks", profile.num_ranks],
        ["records", profile.total_records],
        ["messages", profile.total_messages],
        ["bytes", profile.total_bytes],
        ["instructions", profile.total_instructions],
        ["compute/comm ratio (250 MB/s)",
         profile.compute_to_communication_ratio()],
    ]
    print(format_table(["metric", "value"], rows, title=f"profile of {args.trace}"))
    per_rank = [[rank.rank, rank.bursts, rank.messages_sent, rank.bytes_sent,
                 rank.collectives] for rank in profile.ranks]
    print()
    print(format_table(["rank", "bursts", "sends", "bytes sent", "collectives"],
                       per_rank))
    if args.compare:
        other = Trace.load(args.compare)
        report = expansion_report(trace, other)
        print()
        print(format_table(["metric", "value"],
                           [[key, value] for key, value in report.items()],
                           title=f"expansion report: {args.trace} -> {args.compare}"))
    return 0


_COMMANDS = {
    "list-apps": _cmd_list_apps,
    "trace": _cmd_trace,
    "check": _cmd_check,
    "study": _cmd_study,
    "sweep": _cmd_sweep,
    "run": _cmd_run,
    "cache": _cmd_cache,
    "simulate": _cmd_simulate,
    "profile": _cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by both ``repro-overlap`` and ``python -m repro``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
