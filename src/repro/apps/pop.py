"""POP model: the Parallel Ocean Program.

POP alternates a compute-heavy baroclinic phase (3-D ocean dynamics with a
2-D halo exchange) with a barotropic solver that performs several small halo
exchanges and latency-bound allreduces per time step.  The frequent global
reductions of the barotropic solver are what limits the overlapping
potential to about 10 % in the paper.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.base import ApplicationModel
from repro.mpi.topology import CartesianTopology
from repro.tracing.context import RankContext


class Pop(ApplicationModel):
    """Synthetic POP (baroclinic halo exchange plus barotropic solver)."""

    name = "pop"

    def __init__(self, num_ranks: int = 16, iterations: int = 4,
                 halo_bytes: int = 25_000,
                 baroclinic_instructions: float = 2.5e6,
                 barotropic_steps: int = 4,
                 barotropic_halo_bytes: int = 4_000,
                 barotropic_instructions: float = 1.2e5,
                 mips: float = 1000.0, imbalance: float = 0.10):
        super().__init__(num_ranks, iterations, mips=mips, imbalance=imbalance)
        if halo_bytes < 1 or barotropic_halo_bytes < 1:
            raise ValueError("halo sizes must be positive")
        if baroclinic_instructions <= 0 or barotropic_instructions <= 0:
            raise ValueError("instruction counts must be positive")
        if barotropic_steps < 0:
            raise ValueError("barotropic_steps must be non-negative")
        self.halo_bytes = int(halo_bytes)
        self.baroclinic_instructions = float(baroclinic_instructions)
        self.barotropic_steps = int(barotropic_steps)
        self.barotropic_halo_bytes = int(barotropic_halo_bytes)
        self.barotropic_instructions = float(barotropic_instructions)
        self.topology = CartesianTopology.square(num_ranks, ndims=2)

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update({
            "halo_bytes": self.halo_bytes,
            "baroclinic_instructions": self.baroclinic_instructions,
            "barotropic_steps": self.barotropic_steps,
            "barotropic_halo_bytes": self.barotropic_halo_bytes,
            "grid": self.topology.dims,
        })
        return info

    def run(self, ctx: RankContext) -> None:
        rank = ctx.rank
        neighbors = self.topology.neighbors(rank)
        ghost_out = {
            key: ctx.buffer(f"ghost_out_d{key[0]}_{'p' if key[1] > 0 else 'm'}",
                            self.halo_bytes)
            for key in neighbors
        }
        ghost_in = {
            key: ctx.buffer(f"ghost_in_d{key[0]}_{'p' if key[1] > 0 else 'm'}",
                            self.halo_bytes)
            for key in neighbors
        }
        solver_out = {
            key: ctx.buffer(f"solver_out_d{key[0]}_{'p' if key[1] > 0 else 'm'}",
                            self.barotropic_halo_bytes)
            for key in neighbors
        }
        solver_in = {
            key: ctx.buffer(f"solver_in_d{key[0]}_{'p' if key[1] > 0 else 'm'}",
                            self.barotropic_halo_bytes)
            for key in neighbors
        }
        keys = list(neighbors)
        for iteration in range(self.iterations):
            # Baroclinic phase: 3-D dynamics with a 2-D halo exchange.
            instructions = self.imbalanced(
                self.baroclinic_instructions, rank, iteration)
            self.stencil_compute(ctx, instructions,
                                 consume=[ghost_in[k] for k in keys],
                                 produce=[ghost_out[k] for k in keys])
            self.halo_exchange(
                ctx,
                sends=[(neighbors[k], ghost_out[k], 30) for k in keys],
                recvs=[(neighbors[k], ghost_in[k], 30) for k in keys])
            # Barotropic solver: small stencils plus global reductions.
            for step in range(self.barotropic_steps):
                step_instructions = self.imbalanced(
                    self.barotropic_instructions, rank, iteration, phase=step + 1)
                self.stencil_compute(ctx, step_instructions,
                                     consume=[solver_in[k] for k in keys],
                                     produce=[solver_out[k] for k in keys])
                self.halo_exchange(
                    ctx,
                    sends=[(neighbors[k], solver_out[k], 31) for k in keys],
                    recvs=[(neighbors[k], solver_in[k], 31) for k in keys])
                ctx.allreduce(count=1)
