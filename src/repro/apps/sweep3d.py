"""Sweep3D model: wavefront particle-transport sweeps.

Sweep3D performs discrete-ordinates sweeps across a 2-D process grid.  For
every octant a wavefront starts at one corner of the grid: each process
waits for the boundary angular fluxes of its upstream neighbours, computes
its local cells, and forwards the outgoing fluxes to its downstream
neighbours.  In the traced (coarse-grained) version a process only sends
once the whole local computation of the octant has finished, so the
original execution pays a long pipeline fill.  Chunked automatic overlap
re-pipelines the sweep at a fine granularity, which is why the paper reports
by far the largest benefit here (about 160 %).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.apps.base import ApplicationModel
from repro.mpi.topology import CartesianTopology
from repro.tracing.context import RankContext

#: Sweep directions: one per octant pair projected on the 2-D process grid.
OCTANT_DIRECTIONS: List[Tuple[int, int]] = [
    (+1, +1), (-1, +1), (+1, -1), (-1, -1),
    (+1, +1), (-1, +1), (+1, -1), (-1, -1),
]


class Sweep3D(ApplicationModel):
    """Synthetic Sweep3D (coarse-grained wavefront sweeps)."""

    name = "sweep3d"

    def __init__(self, num_ranks: int = 16, iterations: int = 2,
                 octants: int = 4,
                 flux_bytes: int = 50_000,
                 instructions_per_octant: float = 1.2e6,
                 mips: float = 1000.0, imbalance: float = 0.03):
        super().__init__(num_ranks, iterations, mips=mips, imbalance=imbalance)
        if not 1 <= octants <= len(OCTANT_DIRECTIONS):
            raise ValueError(
                f"octants must be between 1 and {len(OCTANT_DIRECTIONS)}")
        if flux_bytes < 1:
            raise ValueError("flux_bytes must be positive")
        if instructions_per_octant <= 0:
            raise ValueError("instructions_per_octant must be positive")
        self.octants = int(octants)
        self.flux_bytes = int(flux_bytes)
        self.instructions_per_octant = float(instructions_per_octant)
        self.topology = CartesianTopology.square(num_ranks, ndims=2)

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update({
            "octants": self.octants,
            "flux_bytes": self.flux_bytes,
            "instructions_per_octant": self.instructions_per_octant,
            "grid": self.topology.dims,
        })
        return info

    def run(self, ctx: RankContext) -> None:
        rank = ctx.rank
        incoming_x = ctx.buffer("flux_in_x", self.flux_bytes)
        incoming_y = ctx.buffer("flux_in_y", self.flux_bytes)
        outgoing_x = ctx.buffer("flux_out_x", self.flux_bytes)
        outgoing_y = ctx.buffer("flux_out_y", self.flux_bytes)
        for iteration in range(self.iterations):
            for octant in range(self.octants):
                direction_x, direction_y = OCTANT_DIRECTIONS[octant]
                upstream_x = self.topology.shift(rank, 0, -direction_x)
                upstream_y = self.topology.shift(rank, 1, -direction_y)
                downstream_x = self.topology.shift(rank, 0, direction_x)
                downstream_y = self.topology.shift(rank, 1, direction_y)
                tag = 60 + octant
                # Wait for the incoming boundary fluxes of this octant.
                if upstream_x is not None:
                    ctx.recv(upstream_x, incoming_x, tag=tag)
                if upstream_y is not None:
                    ctx.recv(upstream_y, incoming_y, tag=tag + 10)
                instructions = self.imbalanced(
                    self.instructions_per_octant, rank, iteration, phase=octant)
                consume = [buffer for buffer, upstream in
                           ((incoming_x, upstream_x), (incoming_y, upstream_y))
                           if upstream is not None]
                produce = [buffer for buffer, downstream in
                           ((outgoing_x, downstream_x), (outgoing_y, downstream_y))
                           if downstream is not None]
                self.stencil_compute(ctx, instructions,
                                     consume=consume, produce=produce,
                                     head_fraction=0.03, tail_fraction=0.06)
                # Forward the outgoing boundary fluxes downstream.
                if downstream_x is not None:
                    ctx.send(downstream_x, outgoing_x, tag=tag)
                if downstream_y is not None:
                    ctx.send(downstream_y, outgoing_y, tag=tag + 10)
