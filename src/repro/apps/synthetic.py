"""The Sancho-style synthetic loop.

Sancho et al. (SC'06) estimated the overlapping potential analytically by
modelling an application as one iterative loop with a computation phase and
a neighbour exchange.  This model is that loop: it lets the benchmarks
compare the analytical bound against the simulated result, and it is the
workload used to study the overlapping mechanisms in isolation.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.base import ApplicationModel
from repro.tracing.context import RankContext


class SanchoLoop(ApplicationModel):
    """A single iterative loop: compute, then exchange with ring neighbours."""

    name = "sancho-loop"

    def __init__(self, num_ranks: int = 8, iterations: int = 8,
                 message_bytes: int = 100_000,
                 instructions_per_iteration: float = 2.0e6,
                 neighbors_per_rank: int = 2,
                 mips: float = 1000.0, imbalance: float = 0.0):
        super().__init__(num_ranks, iterations, mips=mips, imbalance=imbalance)
        if message_bytes < 1:
            raise ValueError("message_bytes must be positive")
        if instructions_per_iteration <= 0:
            raise ValueError("instructions_per_iteration must be positive")
        if neighbors_per_rank not in (1, 2):
            raise ValueError("neighbors_per_rank must be 1 or 2")
        self.message_bytes = int(message_bytes)
        self.instructions_per_iteration = float(instructions_per_iteration)
        self.neighbors_per_rank = int(neighbors_per_rank)

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update({
            "message_bytes": self.message_bytes,
            "instructions_per_iteration": self.instructions_per_iteration,
            "neighbors_per_rank": self.neighbors_per_rank,
        })
        return info

    # -- analytical reference ------------------------------------------------
    def compute_time(self) -> float:
        """Computation time of one iteration (seconds)."""
        return self.instructions_per_iteration / (self.mips * 1.0e6)

    def communication_time(self, bandwidth_mbps: float, latency: float = 5.0e-6) -> float:
        """Serialized neighbour-exchange time of one iteration (seconds)."""
        if bandwidth_mbps <= 0:
            return latency
        bandwidth = bandwidth_mbps * 1.0e6
        return self.neighbors_per_rank * (latency + self.message_bytes / bandwidth)

    def run(self, ctx: RankContext) -> None:
        rank = ctx.rank
        size = self.num_ranks
        send_peers = [(rank + 1) % size]
        recv_peers = [(rank - 1) % size]
        if self.neighbors_per_rank == 2:
            send_peers.append((rank - 1) % size)
            recv_peers.append((rank + 1) % size)
        send_buffers = {
            peer: ctx.buffer(f"out_{index}", self.message_bytes)
            for index, peer in enumerate(send_peers)
        }
        recv_buffers = {
            peer: ctx.buffer(f"in_{index}", self.message_bytes)
            for index, peer in enumerate(recv_peers)
        }
        for iteration in range(self.iterations):
            instructions = self.imbalanced(
                self.instructions_per_iteration, rank, iteration)
            self.stencil_compute(ctx, instructions,
                                 consume=list(recv_buffers.values()),
                                 produce=list(send_buffers.values()))
            self.halo_exchange(
                ctx,
                sends=[(peer, send_buffers[peer], 70) for peer in send_peers],
                recvs=[(peer, recv_buffers[peer], 70) for peer in recv_peers])
