"""NAS CG model: conjugate gradient with an irregular sparse matrix.

Every CG iteration multiplies the sparse matrix by a vector (the dominant
computation), exchanges partial vectors with the transpose partners of the
2-D processor decomposition, and performs two to three dot-product
allreduces.  The allreduces and the load imbalance of the irregular matrix
are what keeps the overlapping potential low (about 10 % in the paper) even
with an ideal computation pattern.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.apps.base import ApplicationModel
from repro.tracing.context import RankContext


class NasCG(ApplicationModel):
    """Synthetic NAS CG (butterfly partner exchange plus dot products)."""

    name = "nas-cg"

    def __init__(self, num_ranks: int = 16, iterations: int = 6,
                 vector_bytes: int = 35_000,
                 instructions_per_iteration: float = 2.5e6,
                 dot_products_per_iteration: int = 3,
                 mips: float = 1000.0, imbalance: float = 0.15):
        super().__init__(num_ranks, iterations, mips=mips, imbalance=imbalance)
        if vector_bytes < 1:
            raise ValueError("vector_bytes must be positive")
        if instructions_per_iteration <= 0:
            raise ValueError("instructions_per_iteration must be positive")
        if dot_products_per_iteration < 0:
            raise ValueError("dot_products_per_iteration must be non-negative")
        self.vector_bytes = int(vector_bytes)
        self.instructions_per_iteration = float(instructions_per_iteration)
        self.dot_products_per_iteration = int(dot_products_per_iteration)

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update({
            "vector_bytes": self.vector_bytes,
            "instructions_per_iteration": self.instructions_per_iteration,
            "dot_products_per_iteration": self.dot_products_per_iteration,
        })
        return info

    def _partners(self, rank: int) -> List[int]:
        """Butterfly (transpose) partners; falls back to a ring when needed."""
        partners = []
        for stride in (1, 2):
            partner = rank ^ stride
            if partner < self.num_ranks and partner != rank:
                partners.append(partner)
        if not partners:
            partners = [(rank + 1) % self.num_ranks]
        return partners

    def run(self, ctx: RankContext) -> None:
        rank = ctx.rank
        partners = self._partners(rank)
        send_buffers = {
            partner: ctx.buffer(f"q_to_{partner}", self.vector_bytes)
            for partner in partners
        }
        recv_buffers = {
            partner: ctx.buffer(f"q_from_{partner}", self.vector_bytes)
            for partner in partners
        }
        sends = [(partner, send_buffers[partner], 20) for partner in partners]
        recvs = [(partner, recv_buffers[partner], 20) for partner in partners]
        for iteration in range(self.iterations):
            # Exchange the vector pieces produced by the previous iteration;
            # the matrix-vector product that follows consumes them right away.
            self.halo_exchange(ctx, sends, recvs)
            instructions = self.imbalanced(
                self.instructions_per_iteration, rank, iteration)
            # Sparse matrix-vector product: consumes the partner pieces just
            # received, produces the partial results for the next exchange.
            self.stencil_compute(ctx, instructions,
                                 consume=list(recv_buffers.values()),
                                 produce=list(send_buffers.values()),
                                 head_fraction=0.03, tail_fraction=0.05)
            # Dot products of the CG recurrence (rho, alpha, beta).
            for _dot in range(self.dot_products_per_iteration):
                ctx.allreduce(count=1)
