"""Alya model: unstructured finite-element multiphysics code.

Alya partitions an unstructured mesh across processes; every time step
assembles and solves on the local partition and exchanges the values of the
interface nodes with an irregular set of neighbouring partitions (different
neighbours exchange different amounts of data).  One small allreduce per
step checks the residual.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.apps.base import ApplicationModel
from repro.tracing.context import RankContext


class Alya(ApplicationModel):
    """Synthetic Alya (irregular interface exchange, one residual reduce)."""

    name = "alya"

    def __init__(self, num_ranks: int = 16, iterations: int = 4,
                 interface_bytes: int = 60_000,
                 instructions_per_iteration: float = 3.0e6,
                 size_variation: float = 0.15,
                 mips: float = 1000.0, imbalance: float = 0.05):
        super().__init__(num_ranks, iterations, mips=mips, imbalance=imbalance)
        if interface_bytes < 1:
            raise ValueError("interface_bytes must be positive")
        if instructions_per_iteration <= 0:
            raise ValueError("instructions_per_iteration must be positive")
        if not 0.0 <= size_variation < 1.0:
            raise ValueError("size_variation must be in [0, 1)")
        self.interface_bytes = int(interface_bytes)
        self.instructions_per_iteration = float(instructions_per_iteration)
        self.size_variation = float(size_variation)

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update({
            "interface_bytes": self.interface_bytes,
            "instructions_per_iteration": self.instructions_per_iteration,
            "size_variation": self.size_variation,
        })
        return info

    def neighbors_of(self, rank: int) -> List[int]:
        """Irregular but symmetric neighbourhood: ring plus two chords."""
        size = self.num_ranks
        chord = max(2, size // 3)
        candidates = {
            (rank + 1) % size, (rank - 1) % size,
            (rank + chord) % size, (rank - chord) % size,
        }
        candidates.discard(rank)
        return sorted(candidates)

    def run(self, ctx: RankContext) -> None:
        rank = ctx.rank
        neighbors = self.neighbors_of(rank)
        send_buffers = {}
        recv_buffers = {}
        for peer in neighbors:
            size = self.edge_message_size(self.interface_bytes, rank, peer,
                                          self.size_variation)
            send_buffers[peer] = ctx.buffer(f"interface_to_{peer}", size)
            recv_buffers[peer] = ctx.buffer(f"interface_from_{peer}", size)
        for iteration in range(self.iterations):
            # Exchange the interface values produced by the previous step; the
            # assembly that follows consumes them immediately.
            self.halo_exchange(
                ctx,
                sends=[(peer, send_buffers[peer], 40) for peer in neighbors],
                recvs=[(peer, recv_buffers[peer], 40) for peer in neighbors])
            # Global residual check of the previous step.
            ctx.allreduce(count=2)
            instructions = self.imbalanced(
                self.instructions_per_iteration, rank, iteration)
            # Element assembly + local solve: consumes the neighbour interface
            # values just received, produces the next step's interface values.
            self.stencil_compute(ctx, instructions,
                                 consume=list(recv_buffers.values()),
                                 produce=list(send_buffers.values()),
                                 head_fraction=0.03, tail_fraction=0.04)
