"""Synthetic application models.

The paper evaluates automatic overlap on six real scientific MPI codes:
NAS BT, NAS CG, POP, Alya, SPECFEM3D and Sweep3D.  The real binaries (and
the MareNostrum testbed) are not available, so each code is replaced by a
parameterised SPMD model that reproduces its communication structure
(topology, message sizes, collectives, iteration structure), its
computation/communication ratio and -- crucially for this study -- the
*pattern* by which the communicated data is produced and consumed.

All models follow the same convention for the real (measured) pattern:
boundary data that will be sent is finalised only in the tail of the
computation burst (the boundary cells are the last ones updated), and halo
data that was received is needed right at the head of the following burst.
That is the behaviour the paper measured in the real applications, and it is
what makes the real-pattern overlapping potential negligible.
"""

from repro.apps.base import ApplicationModel
from repro.apps.alya import Alya
from repro.apps.collective_loop import AllreduceRing
from repro.apps.nas_bt import NasBT
from repro.apps.nas_cg import NasCG
from repro.apps.pop import Pop
from repro.apps.registry import APPLICATIONS, create_application, paper_applications
from repro.apps.specfem import Specfem
from repro.apps.sweep3d import Sweep3D
from repro.apps.synthetic import SanchoLoop

__all__ = [
    "APPLICATIONS",
    "AllreduceRing",
    "Alya",
    "ApplicationModel",
    "NasBT",
    "NasCG",
    "Pop",
    "SanchoLoop",
    "Specfem",
    "Sweep3D",
    "create_application",
    "paper_applications",
]
