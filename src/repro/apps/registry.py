"""Registry of the paper's evaluated applications."""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.apps.alya import Alya
from repro.apps.base import ApplicationModel
from repro.apps.collective_loop import AllreduceRing
from repro.apps.nas_bt import NasBT
from repro.apps.nas_cg import NasCG
from repro.apps.pop import Pop
from repro.apps.specfem import Specfem
from repro.apps.sweep3d import Sweep3D
from repro.apps.synthetic import SanchoLoop
from repro.errors import ConfigurationError
from repro.workloads.generator import RandomExchangeWorkload, generate_workload

#: All application models by name.  The seeded synthetic-workload generator
#: registers alongside the paper applications, so experiment specs and the
#: CLI can name generated workloads (``random-exchange`` plus a ``seed``
#: option) exactly like built-in apps.
APPLICATIONS: Dict[str, Callable[..., ApplicationModel]] = {
    NasBT.name: NasBT,
    NasCG.name: NasCG,
    Pop.name: Pop,
    Alya.name: Alya,
    Specfem.name: Specfem,
    Sweep3D.name: Sweep3D,
    SanchoLoop.name: SanchoLoop,
    AllreduceRing.name: AllreduceRing,
    RandomExchangeWorkload.name: generate_workload,
}

#: Speedup percentages the paper reports at intermediate bandwidth with the
#: ideal computation pattern (Section III).
PAPER_IDEAL_SPEEDUP_PERCENT: Dict[str, float] = {
    NasBT.name: 30.0,
    NasCG.name: 10.0,
    Pop.name: 10.0,
    Alya.name: 40.0,
    Specfem.name: 65.0,
    Sweep3D.name: 160.0,
}


def create_application(name: str, **overrides: Any) -> ApplicationModel:
    """Instantiate a registered application model by name."""
    try:
        factory = APPLICATIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown application {name!r}; available: {sorted(APPLICATIONS)}") from None
    try:
        return factory(**overrides)
    except TypeError as exc:
        raise ConfigurationError(
            f"application {name!r} does not accept options "
            f"{sorted(overrides)}: {exc}") from exc


def paper_applications(num_ranks: int = 16, scale: float = 1.0) -> List[ApplicationModel]:
    """The six applications of the paper's evaluation, with default sizing.

    ``scale`` multiplies the iteration counts (1.0 keeps the fast defaults
    used by the test-suite; the benchmark harness uses larger values).
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale!r}")

    def _iterations(base: int) -> int:
        return max(1, int(round(base * scale)))

    return [
        NasBT(num_ranks=num_ranks, iterations=_iterations(4)),
        NasCG(num_ranks=num_ranks, iterations=_iterations(6)),
        Pop(num_ranks=num_ranks, iterations=_iterations(4)),
        Alya(num_ranks=num_ranks, iterations=_iterations(4)),
        Specfem(num_ranks=num_ranks, iterations=_iterations(4)),
        Sweep3D(num_ranks=num_ranks, iterations=_iterations(2)),
    ]
