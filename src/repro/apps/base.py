"""Base class and shared helpers for application models."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.tracing.buffers import Buffer
from repro.tracing.context import RankContext, RequestHandle
from repro.tracing.timebase import DEFAULT_MIPS

#: Fraction of a computation burst during which boundary (to-be-sent) data is
#: produced in the *real* pattern: the tail of the burst.
DEFAULT_TAIL_FRACTION = 0.05
#: Fraction of a computation burst during which halo (received) data is
#: consumed in the *real* pattern: the head of the burst.
DEFAULT_HEAD_FRACTION = 0.03


class ApplicationModel(ABC):
    """A parameterised SPMD application model.

    Subclasses implement :meth:`run`, which is executed once per rank by the
    tracing virtual machine with a :class:`RankContext`.
    """

    #: Short identifier used in reports and trace metadata.
    name = "application"

    def __init__(self, num_ranks: int, iterations: int,
                 mips: float = DEFAULT_MIPS, imbalance: float = 0.0):
        if num_ranks < 2:
            raise ConfigurationError(
                f"{self.name}: at least 2 ranks are required, got {num_ranks}")
        if iterations < 1:
            raise ConfigurationError(
                f"{self.name}: at least 1 iteration is required, got {iterations}")
        if mips <= 0:
            raise ConfigurationError(f"{self.name}: MIPS rate must be positive")
        if not 0.0 <= imbalance < 1.0:
            raise ConfigurationError(
                f"{self.name}: imbalance must be in [0, 1), got {imbalance}")
        self.num_ranks = num_ranks
        self.iterations = iterations
        self.mips = mips
        self.imbalance = imbalance

    # -- interface ---------------------------------------------------------
    @abstractmethod
    def run(self, ctx: RankContext) -> None:
        """Execute the model for the rank described by ``ctx``."""

    def describe(self) -> Dict[str, Any]:
        """Metadata stored in the trace."""
        return {
            "name": self.name,
            "num_ranks": self.num_ranks,
            "iterations": self.iterations,
            "mips": self.mips,
            "imbalance": self.imbalance,
        }

    # -- shared helpers -----------------------------------------------------
    def imbalanced(self, instructions: float, rank: int, iteration: int,
                   phase: int = 0) -> float:
        """Apply deterministic per-rank, per-iteration load imbalance."""
        if self.imbalance <= 0:
            return instructions
        seed = (rank * 2654435761 + iteration * 40503 + phase * 9973) % 1000
        deviation = (seed / 999.0) * 2.0 - 1.0
        return instructions * (1.0 + self.imbalance * deviation)

    @staticmethod
    def stencil_compute(ctx: RankContext, instructions: float,
                        consume: Sequence[Buffer] = (),
                        produce: Sequence[Buffer] = (),
                        head_fraction: float = DEFAULT_HEAD_FRACTION,
                        tail_fraction: float = DEFAULT_TAIL_FRACTION) -> None:
        """One stencil-style computation burst with the *real* access pattern.

        The received halos in ``consume`` are loaded during the head of the
        burst, the interior is computed in the middle, and the boundary data
        in ``produce`` is stored during the tail of the burst (the boundary
        cells are updated last).  This is the measured behaviour the paper
        relies on when it concludes that the real-pattern overlapping
        potential is negligible.
        """
        if instructions < 0:
            raise ConfigurationError(f"negative burst length: {instructions}")
        if head_fraction < 0 or tail_fraction < 0 or head_fraction + tail_fraction > 1:
            raise ConfigurationError("invalid head/tail fractions")
        head = instructions * head_fraction
        tail = instructions * tail_fraction
        body = instructions - head - tail
        if consume:
            share = head / len(consume)
            for buffer in consume:
                ctx.read(buffer)
                ctx.compute(share)
        elif head > 0:
            ctx.compute(head)
        ctx.compute(body)
        if produce:
            share = tail / len(produce)
            for buffer in produce:
                ctx.compute(share)
                ctx.write(buffer)
        elif tail > 0:
            ctx.compute(tail)

    @staticmethod
    def halo_exchange(ctx: RankContext,
                      sends: Sequence[Tuple[int, Buffer, int]],
                      recvs: Sequence[Tuple[int, Buffer, int]]) -> None:
        """Non-blocking neighbour exchange: irecv all, isend all, wait all."""
        requests: List[RequestHandle] = []
        for peer, buffer, tag in recvs:
            requests.append(ctx.irecv(peer, buffer, tag=tag))
        for peer, buffer, tag in sends:
            requests.append(ctx.isend(peer, buffer, tag=tag))
        if requests:
            ctx.waitall(requests)

    @staticmethod
    def edge_message_size(base_size: int, rank_a: int, rank_b: int,
                          variation: float = 0.0) -> int:
        """Deterministic per-edge message size, identical on both endpoints."""
        if variation <= 0:
            return base_size
        low, high = min(rank_a, rank_b), max(rank_a, rank_b)
        seed = (low * 73856093 + high * 19349663) % 1000
        deviation = (seed / 999.0) * 2.0 - 1.0
        return max(1, int(base_size * (1.0 + variation * deviation)))


def paper_note(application: str, structure: str) -> str:
    """One-line provenance note stored in app docstrings/metadata."""
    return (f"{application}: synthetic stand-in reproducing the communication "
            f"structure of the real code ({structure}).")
