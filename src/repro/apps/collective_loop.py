"""A collective-dominated iterative loop (``allreduce-ring``).

The paper's applications are point-to-point heavy; their occasional tiny
allreduces barely register on the network.  Topology x collective-model
sweeps need the opposite: a workload whose traffic is mostly *collectives*,
so that lowering them onto the fabric (the ``decomposed`` collective model)
visibly moves the bottom line.  This model is that workload -- the classic
data-parallel training/solver loop:

every iteration computes, exchanges a thin halo with the ring neighbours
(just enough point-to-point traffic for the collectives to contend with),
then allreduces a large gradient-style payload; every ``barrier_interval``
iterations a barrier synchronises the ranks, and the run ends with an
allgather of per-rank results plus a broadcast of the final decision.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.base import ApplicationModel
from repro.mpi.datatypes import BYTE
from repro.tracing.context import RankContext


class AllreduceRing(ApplicationModel):
    """Compute, thin ring halo exchange, fat allreduce -- per iteration."""

    name = "allreduce-ring"

    def __init__(self, num_ranks: int = 8, iterations: int = 8,
                 reduce_bytes: int = 262_144, halo_bytes: int = 4_096,
                 instructions_per_iteration: float = 2.0e6,
                 barrier_interval: int = 4,
                 mips: float = 1000.0, imbalance: float = 0.0):
        super().__init__(num_ranks, iterations, mips=mips, imbalance=imbalance)
        if reduce_bytes < 1:
            raise ValueError("reduce_bytes must be positive")
        if halo_bytes < 0:
            raise ValueError("halo_bytes must be non-negative")
        if instructions_per_iteration <= 0:
            raise ValueError("instructions_per_iteration must be positive")
        if barrier_interval < 1:
            raise ValueError("barrier_interval must be >= 1")
        self.reduce_bytes = int(reduce_bytes)
        self.halo_bytes = int(halo_bytes)
        self.instructions_per_iteration = float(instructions_per_iteration)
        self.barrier_interval = int(barrier_interval)

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update({
            "reduce_bytes": self.reduce_bytes,
            "halo_bytes": self.halo_bytes,
            "instructions_per_iteration": self.instructions_per_iteration,
            "barrier_interval": self.barrier_interval,
        })
        return info

    def run(self, ctx: RankContext) -> None:
        rank = ctx.rank
        size = self.num_ranks
        successor = (rank + 1) % size
        predecessor = (rank - 1) % size
        send_buffer = ctx.buffer("halo_out", self.halo_bytes) \
            if self.halo_bytes else None
        recv_buffer = ctx.buffer("halo_in", self.halo_bytes) \
            if self.halo_bytes else None
        for iteration in range(self.iterations):
            instructions = self.imbalanced(
                self.instructions_per_iteration, rank, iteration)
            self.stencil_compute(
                ctx, instructions,
                consume=[recv_buffer] if recv_buffer else (),
                produce=[send_buffer] if send_buffer else ())
            if send_buffer is not None:
                self.halo_exchange(
                    ctx,
                    sends=[(successor, send_buffer, 40)],
                    recvs=[(predecessor, recv_buffer, 40)])
            ctx.allreduce(count=self.reduce_bytes, datatype=BYTE)
            if (iteration + 1) % self.barrier_interval == 0:
                ctx.barrier()
        ctx.allgather(count=max(1, self.reduce_bytes // size), datatype=BYTE)
        ctx.bcast(count=8, datatype=BYTE)
