"""SPECFEM3D model: spectral-element seismic wave propagation.

SPECFEM advances the seismic wave field explicitly; every time step computes
the element contributions and exchanges large boundary arrays (the
acceleration contributions of the shared spectral-element faces) with the
neighbouring mesh slices.  Messages are large and there are essentially no
collectives, which is why SPECFEM shows one of the highest overlapping
potentials in the paper (about 65 %).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.base import ApplicationModel
from repro.mpi.topology import CartesianTopology
from repro.tracing.context import RankContext


class Specfem(ApplicationModel):
    """Synthetic SPECFEM3D (large boundary exchange, no collectives)."""

    name = "specfem"

    def __init__(self, num_ranks: int = 16, iterations: int = 4,
                 boundary_bytes: int = 400_000,
                 instructions_per_iteration: float = 4.5e6,
                 seismogram_interval: int = 0,
                 mips: float = 1000.0, imbalance: float = 0.05):
        super().__init__(num_ranks, iterations, mips=mips, imbalance=imbalance)
        if boundary_bytes < 1:
            raise ValueError("boundary_bytes must be positive")
        if instructions_per_iteration <= 0:
            raise ValueError("instructions_per_iteration must be positive")
        if seismogram_interval < 0:
            raise ValueError("seismogram_interval must be non-negative")
        self.boundary_bytes = int(boundary_bytes)
        self.instructions_per_iteration = float(instructions_per_iteration)
        self.seismogram_interval = int(seismogram_interval)
        self.topology = CartesianTopology.square(num_ranks, ndims=2)

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update({
            "boundary_bytes": self.boundary_bytes,
            "instructions_per_iteration": self.instructions_per_iteration,
            "grid": self.topology.dims,
        })
        return info

    def run(self, ctx: RankContext) -> None:
        rank = ctx.rank
        neighbors = self.topology.neighbors(rank)
        outgoing = {
            key: ctx.buffer(f"accel_out_d{key[0]}_{'p' if key[1] > 0 else 'm'}",
                            self.boundary_bytes)
            for key in neighbors
        }
        incoming = {
            key: ctx.buffer(f"accel_in_d{key[0]}_{'p' if key[1] > 0 else 'm'}",
                            self.boundary_bytes)
            for key in neighbors
        }
        keys = list(neighbors)
        for iteration in range(self.iterations):
            instructions = self.imbalanced(
                self.instructions_per_iteration, rank, iteration)
            # Element-level update: the assembled boundary contributions are
            # only complete once the last elements touching the interface
            # have been processed (tail of the burst).
            self.stencil_compute(ctx, instructions,
                                 consume=[incoming[k] for k in keys],
                                 produce=[outgoing[k] for k in keys],
                                 head_fraction=0.03, tail_fraction=0.06)
            self.halo_exchange(
                ctx,
                sends=[(neighbors[k], outgoing[k], 50) for k in keys],
                recvs=[(neighbors[k], incoming[k], 50) for k in keys])
            if self.seismogram_interval and (iteration + 1) % self.seismogram_interval == 0:
                ctx.gather(count=16)
