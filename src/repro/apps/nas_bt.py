"""NAS BT model: block-tridiagonal ADI solver.

BT performs, per time step, three ADI sweeps (x, y, z).  Each sweep solves
block-tridiagonal systems across the local sub-domain and then exchanges the
faces touching the neighbouring processes along the sweep dimension.  The
face data is finalised while the last plane of the sweep is computed, and
the incoming faces are needed as soon as the next sweep starts -- the real
pattern that leaves almost no room for automatic overlap.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.base import ApplicationModel
from repro.mpi.topology import CartesianTopology
from repro.tracing.context import RankContext


class NasBT(ApplicationModel):
    """Synthetic NAS BT (2-D process grid, three exchange phases per step)."""

    name = "nas-bt"

    def __init__(self, num_ranks: int = 16, iterations: int = 4,
                 face_bytes: int = 120_000,
                 instructions_per_phase: float = 3.5e6,
                 phases_per_iteration: int = 3,
                 norm_interval: int = 1,
                 mips: float = 1000.0, imbalance: float = 0.05):
        super().__init__(num_ranks, iterations, mips=mips, imbalance=imbalance)
        if face_bytes < 1:
            raise ValueError("face_bytes must be positive")
        if instructions_per_phase <= 0:
            raise ValueError("instructions_per_phase must be positive")
        if phases_per_iteration < 1:
            raise ValueError("phases_per_iteration must be >= 1")
        self.face_bytes = int(face_bytes)
        self.instructions_per_phase = float(instructions_per_phase)
        self.phases_per_iteration = int(phases_per_iteration)
        self.norm_interval = int(norm_interval)
        self.topology = CartesianTopology.square(num_ranks, ndims=2)

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update({
            "face_bytes": self.face_bytes,
            "instructions_per_phase": self.instructions_per_phase,
            "phases_per_iteration": self.phases_per_iteration,
            "grid": self.topology.dims,
        })
        return info

    def run(self, ctx: RankContext) -> None:
        rank = ctx.rank
        neighbors = self.topology.neighbors(rank)
        # One send buffer and one halo buffer per (dimension, direction).
        faces = {
            key: ctx.buffer(f"face_d{key[0]}_{'p' if key[1] > 0 else 'm'}",
                            self.face_bytes)
            for key in neighbors
        }
        halos = {
            key: ctx.buffer(f"halo_d{key[0]}_{'p' if key[1] > 0 else 'm'}",
                            self.face_bytes)
            for key in neighbors
        }
        for iteration in range(self.iterations):
            for phase in range(self.phases_per_iteration):
                dimension = phase % self.topology.ndims
                phase_keys = [key for key in neighbors if key[0] == dimension]
                produce = [faces[key] for key in phase_keys]
                consume = [halos[key] for key in phase_keys]
                instructions = self.imbalanced(
                    self.instructions_per_phase, rank, iteration, phase)
                self.stencil_compute(ctx, instructions,
                                     consume=consume, produce=produce)
                sends = [(neighbors[key], faces[key], 10 + phase)
                         for key in phase_keys]
                recvs = [(neighbors[key], halos[key], 10 + phase)
                         for key in phase_keys]
                self.halo_exchange(ctx, sends, recvs)
            if self.norm_interval and (iteration + 1) % self.norm_interval == 0:
                # Residual norm check: a tiny allreduce every few steps.
                ctx.allreduce(count=5)
