"""Static trace analysis ("tracelint"): MPI correctness linting before replay.

:func:`analyze_trace` walks a trace's prepared record streams -- the same
opcode-tagged form the replay engine dispatches on -- **without**
instantiating the discrete-event simulator, and reports every defect the
replay would otherwise only discover mid-simulation (or worse, hang on):

* **point-to-point matching** (``TL101``/``TL102``/``TL103``/``TL104``):
  sends and receives are matched per (source, destination, tag) stream in
  FIFO order, exactly the semantics of
  :class:`repro.dimemas.matching.MessageMatcher`;
* **collective coherence** (``TL201``/``TL202``/``TL203``/``TL204``): the
  k-th collective of every rank must agree on operation, root and size, the
  root must exist, and every rank must participate;
* **request lifecycle** (``TL301``/``TL302``/``TL303``): every non-blocking
  request must be issued once and waited on exactly once;
* **deadlock search** (``TL401``): a zero-time symbolic replay drives every
  rank as far as matching semantics allow, then searches the wait-for graph
  of the stuck state for cycles.  The pass is parameterized by the eager
  threshold, because the blocking behaviour of a send depends on its
  protocol: the same trace can be clean when every send fits the eager
  protocol and deadlocked under rendezvous (``worst_case=True`` adds an
  all-rendezvous pass regardless of the threshold).

The symbolic replay is exact for this simulator's progress semantics:
whether a blocking operation eventually unblocks depends only on posting
order, never on simulated time, so a trace flagged here *will* wedge the
replay, and a trace that analyzes clean cannot deadlock on matching.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.dimemas.platform import Platform
from repro.tracing.trace import (
    OP_COLLECTIVE,
    OP_CPU,
    OP_RECV,
    OP_SEND,
    OP_WAIT,
    Trace,
)

#: Collective operations whose ``root`` parameter is meaningful; the others
#: (barrier, allreduce, allgather, alltoall) ignore it.
ROOTED_OPERATIONS = frozenset({"bcast", "reduce", "gather", "scatter"})

#: The eager threshold of the ``worst_case`` pass: no size is ``<= -1``, so
#: every send is treated as rendezvous.
ALL_RENDEZVOUS = -1


def analyze_trace(trace: Trace, platform: Optional[Platform] = None, *,
                  eager_threshold: Optional[int] = None,
                  worst_case: bool = False,
                  source: str = "") -> AnalysisReport:
    """Statically analyze ``trace`` and return the diagnostic report.

    ``platform`` (or the explicit ``eager_threshold`` override) supplies the
    protocol switch-over the deadlock search needs; everything else is
    platform-independent.  ``worst_case`` additionally runs the deadlock
    search with every send forced onto the rendezvous protocol, which is the
    adversarial setting: a trace clean under all-rendezvous is deadlock-free
    at *every* eager threshold.  ``source`` labels the diagnostics when
    several traces are analyzed into one merged report.
    """
    if eager_threshold is None:
        eager_threshold = (platform or Platform()).eager_threshold
    ops = trace.prepared().ops
    num_ranks = trace.num_ranks

    diagnostics: List[Diagnostic] = []
    _check_record_kinds(ops, source, diagnostics)
    _check_point_to_point(ops, num_ranks, source, diagnostics)
    _check_collectives(ops, num_ranks, source, diagnostics)
    _check_requests(ops, source, diagnostics)
    thresholds = [eager_threshold]
    if worst_case and ALL_RENDEZVOUS not in thresholds:
        thresholds.append(ALL_RENDEZVOUS)
    deadlocks: Dict[Diagnostic, None] = {}
    for threshold in thresholds:
        for diagnostic in _check_deadlock(ops, num_ranks, threshold, source):
            deadlocks.setdefault(diagnostic)
    diagnostics.extend(deadlocks)

    metadata = {
        "trace": trace.metadata.get("name", "unknown"),
        "num_ranks": num_ranks,
        "records": sum(len(rank_ops) for rank_ops in ops),
        "eager_thresholds": thresholds,
        "source": source,
    }
    return AnalysisReport(diagnostics=tuple(diagnostics), metadata=metadata)


def _diag(out: List[Diagnostic], code: str, message: str, rank: Optional[int],
          record_index: Optional[int], source: str) -> None:
    out.append(Diagnostic(code=code, message=message, rank=rank,
                          record_index=record_index, source=source))


# -- record kinds --------------------------------------------------------------

_KNOWN_OPS = frozenset({OP_CPU, OP_SEND, OP_RECV, OP_WAIT, OP_COLLECTIVE})


def _check_record_kinds(ops, source: str, out: List[Diagnostic]) -> None:
    """TL501: records the replay engine would reject outright."""
    for rank, rank_ops in enumerate(ops):
        for index, (op, record) in enumerate(rank_ops):
            if op not in _KNOWN_OPS:
                _diag(out, "TL501",
                      f"record {record!r} is not replayable", rank, index, source)


# -- point-to-point matching ---------------------------------------------------

def _check_point_to_point(ops, num_ranks: int, source: str,
                          out: List[Diagnostic]) -> None:
    """TL101/TL102/TL103/TL104: per-stream FIFO send/recv matching."""
    sends: Dict[Tuple[int, int, int], List[Tuple[int, int, Any]]] = {}
    recvs: Dict[Tuple[int, int, int], List[Tuple[int, int, Any]]] = {}
    for rank, rank_ops in enumerate(ops):
        for index, (op, record) in enumerate(rank_ops):
            if op == OP_SEND:
                if not 0 <= record.dst < num_ranks:
                    _diag(out, "TL103",
                          f"send names destination rank {record.dst} "
                          f"outside 0..{num_ranks - 1}", rank, index, source)
                    continue
                key = (rank, record.dst, record.tag)
                sends.setdefault(key, []).append((rank, index, record))
            elif op == OP_RECV:
                if not 0 <= record.src < num_ranks:
                    _diag(out, "TL103",
                          f"receive names source rank {record.src} "
                          f"outside 0..{num_ranks - 1}", rank, index, source)
                    continue
                key = (record.src, rank, record.tag)
                recvs.setdefault(key, []).append((rank, index, record))

    for key in sorted(set(sends) | set(recvs)):
        src, dst, tag = key
        stream_sends = sends.get(key, [])
        stream_recvs = recvs.get(key, [])
        for (_, send_index, send), (_, recv_index, recv) in zip(stream_sends,
                                                                stream_recvs):
            if send.size != recv.size:
                _diag(out, "TL104",
                      f"receive of {recv.size} bytes from rank {src} "
                      f"(tag {tag}) is matched by a send of {send.size} "
                      f"bytes at rank {src}, record {send_index}",
                      dst, recv_index, source)
        for _, index, record in stream_sends[len(stream_recvs):]:
            _diag(out, "TL101",
                  f"send of {record.size} bytes to rank {dst} (tag {tag}) "
                  f"is never received", src, index, source)
        for _, index, record in stream_recvs[len(stream_sends):]:
            _diag(out, "TL102",
                  f"receive of {record.size} bytes from rank {src} "
                  f"(tag {tag}) is never sent", dst, index, source)


# -- collective coherence ------------------------------------------------------

def _check_collectives(ops, num_ranks: int, source: str,
                       out: List[Diagnostic]) -> None:
    """TL201/TL202/TL203/TL204: cross-rank collective agreement."""
    per_rank: List[List[Tuple[int, Any]]] = [
        [(index, record) for index, (op, record) in enumerate(rank_ops)
         if op == OP_COLLECTIVE]
        for rank_ops in ops]

    counts = [len(collectives) for collectives in per_rank]
    if len(set(counts)) > 1:
        # With mismatched participation the per-ordinal comparison below
        # would mis-align every later collective, so report the counts and
        # stop: the count mismatch *is* the defect.
        reference = _reference_count(counts)
        for rank, count in enumerate(counts):
            if count == reference:
                continue
            if count > reference:
                extra_index = per_rank[rank][reference][0]
                message = (f"has {count} collective records while other "
                           f"ranks have {reference} (first extra entry)")
                _diag(out, "TL203", message, rank, extra_index, source)
            else:
                _diag(out, "TL203",
                      f"has {count} collective records while other ranks "
                      f"have {reference}", rank, None, source)
        return

    for ordinal in range(counts[0] if counts else 0):
        entrants = [(rank, *per_rank[rank][ordinal])
                    for rank in range(num_ranks)]
        ref_rank, ref_index, ref = entrants[0]
        for rank, index, record in entrants[1:]:
            if record.operation != ref.operation:
                _diag(out, "TL201",
                      f"entered {record.operation!r} while rank {ref_rank} "
                      f"entered {ref.operation!r} (collective {ordinal})",
                      rank, index, source)
                continue
            if record.root != ref.root:
                _diag(out, "TL201",
                      f"entered {record.operation!r} with root {record.root} "
                      f"while rank {ref_rank} used root {ref.root} "
                      f"(collective {ordinal})", rank, index, source)
            if record.size != ref.size:
                _diag(out, "TL201",
                      f"entered {record.operation!r} with size {record.size} "
                      f"while rank {ref_rank} used size {ref.size} "
                      f"(collective {ordinal})", rank, index, source)
        for rank, index, record in entrants:
            if (record.operation in ROOTED_OPERATIONS
                    and not 0 <= record.root < num_ranks):
                _diag(out, "TL202",
                      f"{record.operation!r} names root {record.root} "
                      f"outside 0..{num_ranks - 1} (collective {ordinal})",
                      rank, index, source)
            if record.comm_size not in (0, num_ranks):
                _diag(out, "TL204",
                      f"{record.operation!r} records communicator size "
                      f"{record.comm_size} in a {num_ranks}-rank trace "
                      f"(collective {ordinal})", rank, index, source)


def _reference_count(counts: List[int]) -> int:
    """The participation count to compare against: the most common one."""
    frequency = Counter(counts)
    best = max(frequency.values())
    return max(count for count, times in frequency.items() if times == best)


# -- request lifecycle ---------------------------------------------------------

def _check_requests(ops, source: str, out: List[Diagnostic]) -> None:
    """TL301/TL302/TL303: issued -> waited exactly once, per rank."""
    for rank, rank_ops in enumerate(ops):
        outstanding: Dict[Any, Tuple[int, str]] = {}
        for index, (op, record) in enumerate(rank_ops):
            if op in (OP_SEND, OP_RECV) and not record.blocking:
                kind = "isend" if op == OP_SEND else "irecv"
                request = record.request
                if request is None:
                    _diag(out, "TL301",
                          f"non-blocking {kind} carries no request id and "
                          f"can never be waited on", rank, index, source)
                elif request in outstanding:
                    issued_at, issued_kind = outstanding[request]
                    _diag(out, "TL303",
                          f"{kind} reuses request id {request} while the "
                          f"{issued_kind} issued at record {issued_at} is "
                          f"still outstanding", rank, index, source)
                else:
                    outstanding[request] = (index, kind)
            elif op == OP_WAIT:
                for request in record.requests:
                    if request in outstanding:
                        del outstanding[request]
                    else:
                        _diag(out, "TL302",
                              f"waits on request {request}, which is not "
                              f"outstanding (never issued, or already "
                              f"waited on)", rank, index, source)
        for request, (index, kind) in sorted(outstanding.items(),
                                             key=lambda item: item[1][0]):
            _diag(out, "TL301",
                  f"{kind} request {request} is never waited on "
                  f"(its transfer would be dropped at end of trace)",
                  rank, index, source)


# -- deadlock search -----------------------------------------------------------

class _SymbolicMessage:
    """The matcher state of one message in the zero-time replay."""

    __slots__ = ("src", "dst", "size", "send_posted", "recv_posted",
                 "rendezvous")

    def __init__(self, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst
        self.size = 0
        self.send_posted = False
        self.recv_posted = False
        self.rendezvous = False

    def send_complete(self) -> bool:
        return self.send_posted and (not self.rendezvous or self.recv_posted)

    def arrived(self) -> bool:
        # Once both sides are posted the simulated transfer always finishes
        # in finite time, so posting is the only progress condition.
        return self.send_posted


class _SymbolicReplay:
    """A zero-time replay of the matching semantics, used for deadlock search.

    Ranks advance greedily: a record either completes immediately (eager
    sends, CPU bursts) or blocks on a condition over peer postings
    (rendezvous sends, receives, waits, collectives).  Simulated time never
    appears -- only posting order does -- so the fixpoint of this replay
    blocks exactly where the discrete-event replay would stop progressing.
    """

    def __init__(self, ops, num_ranks: int, eager_threshold: int) -> None:
        self.ops = ops
        self.num_ranks = num_ranks
        self.eager_threshold = eager_threshold
        self.pcs = [0] * num_ranks
        #: Per-rank blocking state: ``None`` or ``(kind, payload, index)``
        #: where ``kind`` is ``send``/``recv``/``wait``/``collective``.
        self.blocked: List[Optional[Tuple[str, Any, int]]] = [None] * num_ranks
        self._pending_sends: Dict[Tuple[int, int, int],
                                  Deque[_SymbolicMessage]] = {}
        self._pending_recvs: Dict[Tuple[int, int, int],
                                  Deque[_SymbolicMessage]] = {}
        self._outstanding: List[Dict[Any, Tuple[str, _SymbolicMessage]]] = [
            {} for _ in range(num_ranks)]
        self._collective_arrived: List[set] = []
        self._collective_ordinal = [0] * num_ranks

    # -- matching ----------------------------------------------------------
    def _post_send(self, src: int, record) -> _SymbolicMessage:
        key = (src, record.dst, record.tag)
        queue = self._pending_recvs.get(key)
        if queue:
            message = queue.popleft()
        else:
            message = _SymbolicMessage(src, record.dst)
            self._pending_sends.setdefault(key, deque()).append(message)
        message.size = record.size
        message.send_posted = True
        message.rendezvous = record.size > self.eager_threshold
        return message

    def _post_recv(self, dst: int, record) -> _SymbolicMessage:
        key = (record.src, dst, record.tag)
        queue = self._pending_sends.get(key)
        if queue:
            message = queue.popleft()
        else:
            message = _SymbolicMessage(record.src, dst)
            self._pending_recvs.setdefault(key, deque()).append(message)
        message.recv_posted = True
        return message

    # -- blocking conditions -----------------------------------------------
    def _condition_met(self, rank: int) -> bool:
        state = self.blocked[rank]
        if state is None:
            return True
        kind, payload, _ = state
        if kind == "send":
            return payload.send_complete()
        if kind == "recv":
            return payload.arrived()
        if kind == "wait":
            return all(message.send_complete() if side == "isend"
                       else message.arrived()
                       for side, message in payload)
        # collective: payload is the ordinal
        return len(self._collective_arrived[payload]) == self.num_ranks

    # -- the walk ----------------------------------------------------------
    def _step(self, rank: int) -> bool:
        """Advance ``rank`` by one record if possible."""
        if self.blocked[rank] is not None:
            if not self._condition_met(rank):
                return False
            self.blocked[rank] = None
            self.pcs[rank] += 1
            return True
        rank_ops = self.ops[rank]
        index = self.pcs[rank]
        if index >= len(rank_ops):
            return False
        op, record = rank_ops[index]
        if op == OP_SEND:
            message = self._post_send(rank, record)
            if record.blocking:
                self.blocked[rank] = ("send", message, index)
                return self._step(rank)
            self._outstanding[rank][record.request] = ("isend", message)
        elif op == OP_RECV:
            message = self._post_recv(rank, record)
            if record.blocking:
                self.blocked[rank] = ("recv", message, index)
                return self._step(rank)
            self._outstanding[rank][record.request] = ("irecv", message)
        elif op == OP_WAIT:
            pending = []
            for request in record.requests:
                entry = self._outstanding[rank].pop(request, None)
                if entry is not None:
                    # Unknown requests are already TL302; skipping them here
                    # keeps the deadlock search from cascading on them.
                    pending.append(entry)
            self.blocked[rank] = ("wait", pending, index)
            return self._step(rank)
        elif op == OP_COLLECTIVE:
            ordinal = self._collective_ordinal[rank]
            self._collective_ordinal[rank] += 1
            while len(self._collective_arrived) <= ordinal:
                self._collective_arrived.append(set())
            self._collective_arrived[ordinal].add(rank)
            self.blocked[rank] = ("collective", ordinal, index)
            return self._step(rank)
        # CPU bursts (and unknown records, reported separately) just pass.
        self.pcs[rank] += 1
        return True

    def run(self) -> List[int]:
        """Drive every rank to its fixpoint; return the stuck ranks."""
        progressed = True
        while progressed:
            progressed = False
            for rank in range(self.num_ranks):
                while self._step(rank):
                    progressed = True
        return [rank for rank in range(self.num_ranks)
                if self.blocked[rank] is not None
                or self.pcs[rank] < len(self.ops[rank])]

    # -- the wait-for graph ------------------------------------------------
    def wait_edges(self, rank: int) -> List[Tuple[int, str, int]]:
        """``(peer, kind, record_index)`` edges of a stuck rank."""
        state = self.blocked[rank]
        if state is None:
            return []
        kind, payload, index = state
        if kind == "send":
            return [(payload.dst, "send", index)]
        if kind == "recv":
            return [(payload.src, "recv", index)]
        if kind == "wait":
            edges = []
            for side, message in payload:
                if side == "isend" and not message.send_complete():
                    edges.append((message.dst, "wait-send", index))
                elif side == "irecv" and not message.arrived():
                    edges.append((message.src, "wait-recv", index))
            return edges
        arrived = self._collective_arrived[payload]
        return [(peer, "collective", index)
                for peer in range(self.num_ranks) if peer not in arrived]


_EDGE_PHRASES = {
    "send": "blocking rendezvous send at record {index} to rank {peer}",
    "recv": "blocking receive at record {index} from rank {peer}",
    "wait-send": "wait at record {index} on a rendezvous send to rank {peer}",
    "wait-recv": "wait at record {index} on a receive from rank {peer}",
    "collective": "collective at record {index} missing rank {peer}",
}

_P2P_EDGES = frozenset({"send", "recv", "wait-send", "wait-recv"})


def _check_deadlock(ops, num_ranks: int, eager_threshold: int,
                    source: str) -> List[Diagnostic]:
    """TL401: cycles in the wait-for graph of the symbolic replay's fixpoint."""
    replay = _SymbolicReplay(ops, num_ranks, eager_threshold)
    stuck = replay.run()
    if not stuck:
        return []
    edges = {rank: replay.wait_edges(rank) for rank in stuck}
    cycles = _find_cycles({rank: [peer for peer, _, _ in rank_edges]
                           for rank, rank_edges in edges.items()})
    diagnostics: List[Diagnostic] = []
    seen: set = set()
    for cycle in cycles:
        # Ranks stuck on an absent partner (no cycle) are covered by the
        # structural checks; a cycle is only reported as a deadlock when at
        # least one point-to-point wait participates -- a pure collective
        # cycle is the TL203 count mismatch wearing its runtime face.
        members = frozenset(cycle)
        if members in seen:
            continue
        seen.add(members)
        cycle_edges = []
        for position, rank in enumerate(cycle):
            successor = cycle[(position + 1) % len(cycle)]
            edge = next((entry for entry in edges[rank]
                         if entry[0] == successor), None)
            if edge is not None:
                cycle_edges.append((rank, edge))
        if not any(edge[1] in _P2P_EDGES for _, edge in cycle_edges):
            continue
        anchor = min(cycle)
        anchor_index = next((edge[2] for rank, edge in cycle_edges
                             if rank == anchor), None)
        chain = "; ".join(
            f"rank {rank} " + _EDGE_PHRASES[kind].format(index=index, peer=peer)
            for rank, (peer, kind, index) in cycle_edges)
        ranks = "->".join(str(rank) for rank in cycle + [cycle[0]])
        threshold_note = ("every send rendezvous"
                          if eager_threshold < 0
                          else f"eager_threshold={eager_threshold}")
        diagnostics.append(Diagnostic(
            code="TL401",
            message=(f"ranks {ranks} wait on each other ({threshold_note}): "
                     f"{chain}"),
            rank=anchor, record_index=anchor_index, source=source))
    return diagnostics


def _find_cycles(graph: Dict[int, List[int]]) -> List[List[int]]:
    """Elementary cycles reachable in the stuck wait-for graph (DFS)."""
    cycles: List[List[int]] = []
    visited: set = set()

    def visit(node: int, stack: List[int], on_stack: Dict[int, int]) -> None:
        visited.add(node)
        on_stack[node] = len(stack)
        stack.append(node)
        for peer in graph.get(node, ()):
            if peer in on_stack:
                cycle = stack[on_stack[peer]:]
                anchor = cycle.index(min(cycle))
                cycles.append(cycle[anchor:] + cycle[:anchor])
            elif peer not in visited and peer in graph:
                visit(peer, stack, on_stack)
        stack.pop()
        del on_stack[node]

    for start in sorted(graph):
        if start not in visited:
            visit(start, [], {})
    return cycles
