"""Static trace analysis: MPI correctness linting before any replay runs.

The package has two halves:

* :mod:`repro.analysis.diagnostics` -- the typed result surface
  (:class:`Diagnostic`, :class:`AnalysisReport`, the stable ``TL*`` code
  registry and the :func:`format_defect` formatting the replay engine
  shares for its runtime errors);
* :mod:`repro.analysis.tracelint` -- :func:`analyze_trace`, the analyzer
  that walks prepared record streams without instantiating the DES.

Entry points elsewhere: the ``repro-overlap check`` CLI subcommand, the
fail-fast precheck in :func:`repro.experiments.runner.run_experiment`, and
the CI gate asserting every registered app analyzes clean.
"""

from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    CodeInfo,
    Diagnostic,
    Severity,
    code_table,
    format_defect,
    location,
)
from repro.analysis.tracelint import ALL_RENDEZVOUS, analyze_trace

__all__ = [
    "ALL_RENDEZVOUS",
    "AnalysisReport",
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "Severity",
    "analyze_trace",
    "code_table",
    "format_defect",
    "location",
]
