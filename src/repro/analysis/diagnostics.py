"""Typed diagnostics shared by the static analyzer and the replay engine.

Every defect the static analyzer (:mod:`repro.analysis.tracelint`) can find
carries a *stable* code (``TL101``, ``TL201``, ...) so tests, CI gates and
downstream tooling can match on identity instead of message prose.  The
replay engine reuses :func:`format_defect` for the runtime errors that
correspond to static codes, so a defect reads the same whether it was caught
before the simulation started or in the middle of it::

    TL201 collective-mismatch at rank 1, record 7: entered 'allreduce' ...

This module is deliberately dependency-light (standard library plus the
package's error types) so both the analyzer and the replay hot path can
import it without cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional, Tuple


class Severity(Enum):
    """How bad a diagnostic is.

    ``ERROR`` diagnostics describe traces the replay engine would reject
    (or hang on); ``WARNING`` diagnostics describe suspicious but replayable
    content.
    """

    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return 1 if self is Severity.WARNING else 2


@dataclass(frozen=True)
class CodeInfo:
    """The registry entry of one diagnostic code."""

    code: str
    slug: str
    severity: Severity
    summary: str


def _registry(*entries: Tuple[str, str, Severity, str]) -> Dict[str, CodeInfo]:
    return {code: CodeInfo(code, slug, severity, summary)
            for code, slug, severity, summary in entries}


#: All diagnostic codes the analyzer can emit.  Codes are stable: they are
#: part of the tool's public surface (tests and CI gates match on them), so
#: retired codes must not be reused.
CODES: Dict[str, CodeInfo] = _registry(
    ("TL101", "unmatched-send", Severity.ERROR,
     "a send has no matching receive on the same (source, dest, tag) stream"),
    ("TL102", "unmatched-recv", Severity.ERROR,
     "a receive has no matching send on the same (source, dest, tag) stream"),
    ("TL103", "peer-out-of-range", Severity.ERROR,
     "a point-to-point record names a peer rank outside 0..N-1"),
    ("TL104", "size-mismatch", Severity.WARNING,
     "a matched send/receive pair disagrees on the message size"),
    ("TL201", "collective-mismatch", Severity.ERROR,
     "ranks disagree on a collective's operation, root or size"),
    ("TL202", "collective-root-out-of-range", Severity.ERROR,
     "a rooted collective names a root rank outside 0..N-1"),
    ("TL203", "collective-count-mismatch", Severity.ERROR,
     "ranks have different numbers of collective records"),
    ("TL204", "collective-comm-size", Severity.WARNING,
     "a collective's recorded communicator size does not match the trace"),
    ("TL301", "dangling-request", Severity.ERROR,
     "a non-blocking request is issued but never waited on"),
    ("TL302", "wait-unknown-request", Severity.ERROR,
     "a wait references a request that is not outstanding"),
    ("TL303", "request-id-reused", Severity.ERROR,
     "a request id is reissued while still outstanding"),
    ("TL401", "potential-rendezvous-deadlock", Severity.ERROR,
     "blocking operations wait on each other in a cycle"),
    ("TL501", "unknown-record", Severity.ERROR,
     "a record kind the replay engine does not know"),
)


def location(rank: Optional[int], record_index: Optional[int]) -> str:
    """The human-readable trace location of a defect (``rank 2, record 17``)."""
    if rank is None:
        return "trace"
    if record_index is None:
        return f"rank {rank}"
    return f"rank {rank}, record {record_index}"


def format_defect(code: str, rank: Optional[int], record_index: Optional[int],
                  message: str) -> str:
    """One defect, formatted identically for static and runtime surfaces."""
    info = CODES[code]
    return f"{code} {info.slug} at {location(rank, record_index)}: {message}"


@dataclass(frozen=True)
class Diagnostic:
    """One defect found in a trace.

    ``rank`` and ``record_index`` locate the defect (``record_index`` is the
    position in that rank's record list; ``None`` when the defect is a
    whole-rank property such as a missing collective).  ``source`` labels
    which trace the diagnostic belongs to when several are analyzed together
    (e.g. per-variant traces of an experiment plan).
    """

    code: str
    message: str
    rank: Optional[int] = None
    record_index: Optional[int] = None
    source: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def info(self) -> CodeInfo:
        return CODES[self.code]

    @property
    def severity(self) -> Severity:
        return self.info.severity

    @property
    def slug(self) -> str:
        return self.info.slug

    def format(self) -> str:
        """The single-line rendering (shared with runtime errors)."""
        text = format_defect(self.code, self.rank, self.record_index, self.message)
        if self.source:
            return f"[{self.source}] {text}"
        return text

    def to_row(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity.value,
            "rank": self.rank,
            "record_index": self.record_index,
            "source": self.source,
            "message": self.message,
        }


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one (or several merged) static analysis passes."""

    diagnostics: Tuple[Diagnostic, ...] = ()
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "diagnostics", tuple(self.diagnostics))

    # -- aggregate properties ----------------------------------------------
    @property
    def ok(self) -> bool:
        """True when the analysis found nothing at all."""
        return not self.diagnostics

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics),
                   key=lambda severity: severity.rank)

    def exit_code(self) -> int:
        """The process exit code the CLI maps this report to (0/1/2)."""
        severity = self.max_severity
        if severity is None:
            return 0
        return severity.rank

    def codes(self) -> List[str]:
        """The distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    # -- structured output -------------------------------------------------
    def to_rows(self) -> List[Dict[str, Any]]:
        """Tidy per-diagnostic rows (one dict per defect)."""
        return [d.to_row() for d in self.diagnostics]

    def to_json(self, indent: int = 2) -> str:
        payload = {
            "ok": self.ok,
            "errors": self.errors,
            "warnings": self.warnings,
            "diagnostics": self.to_rows(),
            "metadata": self.metadata,
        }
        return json.dumps(payload, indent=indent, sort_keys=False) + "\n"

    def summary(self) -> str:
        """One line: ``clean`` or the error/warning counts."""
        if self.ok:
            return "clean: no diagnostics"
        return (f"{len(self.diagnostics)} diagnostic(s): "
                f"{self.errors} error(s), {self.warnings} warning(s)")

    def render_text(self) -> str:
        """The multi-line text rendering the CLI prints."""
        lines = [d.format() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    # -- composition -------------------------------------------------------
    @classmethod
    def merged(cls, reports: Iterable["AnalysisReport"],
               metadata: Optional[Dict[str, Any]] = None) -> "AnalysisReport":
        """Merge several reports, dropping duplicate diagnostics.

        Analyzing one trace under several eager thresholds repeats every
        threshold-independent diagnostic; merging keeps the first occurrence
        of each identical diagnostic (code, location, source and message).
        """
        seen: Dict[Diagnostic, None] = {}
        sources: List[Dict[str, Any]] = []
        for report in reports:
            for diagnostic in report.diagnostics:
                seen.setdefault(diagnostic)
            if report.metadata:
                sources.append(report.metadata)
        merged_metadata = dict(metadata or {})
        merged_metadata.setdefault("analyses", sources)
        return cls(diagnostics=tuple(seen), metadata=merged_metadata)


def code_table() -> List[Tuple[str, str, str, str]]:
    """``(code, slug, severity, summary)`` rows for docs and ``--help``."""
    return [(info.code, info.slug, info.severity.value, info.summary)
            for info in CODES.values()]
