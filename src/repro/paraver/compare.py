"""Quantitative comparison of two timelines.

This is the "compare the non-overlapped and overlapped executions both
quantitatively and qualitatively" part of the paper's environment: given the
reconstructed original and overlapped time behaviours it reports the
speedup, the per-state time deltas and a textual summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import AnalysisError
from repro.paraver.ascii import render_side_by_side
from repro.paraver.states import ThreadState
from repro.paraver.timeline import Timeline


@dataclass
class TimelineComparison:
    """Result of comparing a baseline timeline against a candidate."""

    baseline_name: str
    candidate_name: str
    baseline_duration: float
    candidate_duration: float
    state_deltas: Dict[ThreadState, float] = field(default_factory=dict)
    baseline_profile: Dict[ThreadState, float] = field(default_factory=dict)
    candidate_profile: Dict[ThreadState, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Baseline time divided by candidate time (>1 means candidate faster)."""
        if self.candidate_duration <= 0:
            raise AnalysisError("candidate timeline has zero duration")
        return self.baseline_duration / self.candidate_duration

    @property
    def improvement_percent(self) -> float:
        """Speedup expressed the way the paper reports it (30% == 1.3x)."""
        return (self.speedup - 1.0) * 100.0

    def summary(self) -> str:
        lines: List[str] = [
            f"baseline  {self.baseline_name}: {self.baseline_duration:.6f} s",
            f"candidate {self.candidate_name}: {self.candidate_duration:.6f} s",
            f"speedup: {self.speedup:.3f}x ({self.improvement_percent:+.1f}%)",
            "state deltas (candidate - baseline, rank-seconds):",
        ]
        for state in ThreadState:
            delta = self.state_deltas.get(state, 0.0)
            if abs(delta) > 1e-12:
                lines.append(f"  {state.label:<22} {delta:+.6f}")
        return "\n".join(lines)


def compare_timelines(baseline: Timeline, candidate: Timeline) -> TimelineComparison:
    """Compare two timelines of the same application."""
    if baseline.num_ranks != candidate.num_ranks:
        raise AnalysisError(
            "timelines describe different numbers of ranks "
            f"({baseline.num_ranks} vs {candidate.num_ranks})")
    baseline_profile = baseline.state_profile()
    candidate_profile = candidate.state_profile()
    deltas = {
        state: candidate_profile.get(state, 0.0) - baseline_profile.get(state, 0.0)
        for state in ThreadState
    }
    return TimelineComparison(
        baseline_name=baseline.name,
        candidate_name=candidate.name,
        baseline_duration=baseline.duration,
        candidate_duration=candidate.duration,
        state_deltas=deltas,
        baseline_profile=baseline_profile,
        candidate_profile=candidate_profile,
    )


def side_by_side(baseline: Timeline, candidate: Timeline, width: int = 60) -> str:
    """Qualitative (visual) comparison on a shared time scale."""
    return render_side_by_side(baseline, candidate, width=width)
