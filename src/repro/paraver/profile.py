"""Paraver-analyzer-style profiles of reconstructed timelines.

Paraver is not only a timeline browser: its analysis module turns the
timeline into tables (time per state per thread, communication matrices,
message-size histograms).  This module provides those views for the
reconstructed executions so the effect of overlap can be quantified rank by
rank, which is how the paper inspects *where* the waiting time goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import AnalysisError
from repro.paraver.states import ThreadState
from repro.paraver.timeline import Timeline


@dataclass
class StateProfile:
    """Time per state per rank, plus totals and percentages."""

    num_ranks: int
    duration: float
    per_rank: Dict[int, Dict[ThreadState, float]] = field(default_factory=dict)

    @property
    def totals(self) -> Dict[ThreadState, float]:
        totals: Dict[ThreadState, float] = {state: 0.0 for state in ThreadState}
        for profile in self.per_rank.values():
            for state, value in profile.items():
                totals[state] += value
        return totals

    def percentage(self, state: ThreadState, rank: int = None) -> float:
        """Share of the (rank-)time spent in ``state`` (0..100)."""
        if self.duration <= 0:
            return 0.0
        if rank is None:
            return 100.0 * self.totals[state] / (self.duration * self.num_ranks)
        return 100.0 * self.per_rank[rank].get(state, 0.0) / self.duration

    def imbalance(self, state: ThreadState = ThreadState.RUNNING) -> float:
        """Max-over-mean of the per-rank time in ``state`` (1.0 = balanced)."""
        values = [self.per_rank[rank].get(state, 0.0) for rank in range(self.num_ranks)]
        mean = sum(values) / len(values) if values else 0.0
        if mean <= 0:
            return 1.0
        return max(values) / mean

    def as_rows(self) -> List[List[object]]:
        """Rows (one per rank) for text reporting."""
        rows = []
        for rank in range(self.num_ranks):
            profile = self.per_rank.get(rank, {})
            rows.append([rank] + [profile.get(state, 0.0) for state in ThreadState])
        return rows


def state_profile(timeline: Timeline) -> StateProfile:
    """Compute the per-rank time-per-state profile of a timeline."""
    profile = StateProfile(num_ranks=timeline.num_ranks, duration=timeline.duration)
    for rank in range(timeline.num_ranks):
        profile.per_rank[rank] = timeline.state_profile(rank)
    return profile


def communication_matrix(timeline: Timeline) -> List[List[int]]:
    """Bytes sent from every rank to every rank (dense matrix)."""
    size = timeline.num_ranks
    matrix = [[0] * size for _ in range(size)]
    for comm in timeline.communications:
        if not (0 <= comm.src < size and 0 <= comm.dst < size):
            raise AnalysisError(
                f"communication {comm.src}->{comm.dst} outside {size} ranks")
        matrix[comm.src][comm.dst] += comm.size
    return matrix


def message_size_histogram(timeline: Timeline,
                           boundaries: Sequence[int] = (
                               1024, 8192, 65536, 262144, 1048576)) -> Dict[str, int]:
    """Histogram of message sizes using the given bucket boundaries."""
    boundaries = sorted(boundaries)
    labels = []
    previous = 0
    for boundary in boundaries:
        labels.append(f"{previous}-{boundary - 1}")
        previous = boundary
    labels.append(f">={previous}")
    histogram = {label: 0 for label in labels}
    for comm in timeline.communications:
        for index, boundary in enumerate(boundaries):
            if comm.size < boundary:
                histogram[labels[index]] += 1
                break
        else:
            histogram[labels[-1]] += 1
    return histogram


def flight_time_statistics(timeline: Timeline) -> Dict[str, float]:
    """Minimum / mean / maximum in-flight time of the drawn communications."""
    flights = [comm.flight_time for comm in timeline.communications]
    if not flights:
        return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "count": len(flights),
        "min": min(flights),
        "mean": sum(flights) / len(flights),
        "max": max(flights),
    }


def overlap_efficiency(original: Timeline, overlapped: Timeline) -> Dict[str, float]:
    """How much of the original blocked time the overlapped execution removed.

    Returns the total blocked rank-seconds of both executions, the absolute
    reduction and the fraction of the original blocked time that was hidden
    (the paper's notion of exploited overlap potential).
    """
    blocking = ThreadState.blocking_states()
    original_blocked = sum(original.time_in_state(state) for state in blocking)
    overlapped_blocked = sum(overlapped.time_in_state(state) for state in blocking)
    hidden = original_blocked - overlapped_blocked
    return {
        "original_blocked": original_blocked,
        "overlapped_blocked": overlapped_blocked,
        "hidden": hidden,
        "hidden_fraction": (hidden / original_blocked) if original_blocked > 0 else 0.0,
    }
