"""Export timelines to the Paraver ``.prv`` text format.

The format is the classic Paraver trace format: a header line followed by
state records (type 1) and communication records (type 3).  Times are
written in nanoseconds as Paraver expects integer timestamps.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.paraver.timeline import Timeline

#: Conversion factor from simulated seconds to Paraver nanoseconds.
NANOSECONDS = 1.0e9


def _nanoseconds(value: float) -> int:
    return int(round(value * NANOSECONDS))


def to_prv(timeline: Timeline) -> str:
    """Render ``timeline`` as the contents of a ``.prv`` file."""
    total = _nanoseconds(timeline.duration)
    num_tasks = timeline.num_ranks
    # Header: #Paraver (date):total_time:nNodes(cpus,..):nAppl:appl_list
    node_spec = f"{num_tasks}({','.join('1' for _ in range(num_tasks))})"
    appl_spec = f"{num_tasks}({','.join('1:1' for _ in range(num_tasks))})"
    lines: List[str] = [
        f"#Paraver (01/01/10 at 00:00):{total}_ns:{node_spec}:1:{appl_spec}"
    ]
    # State records: 1:cpu:appl:task:thread:begin:end:state
    for rank in range(num_tasks):
        for interval in timeline.rank_intervals(rank):
            lines.append(
                "1:{cpu}:1:{task}:1:{begin}:{end}:{state}".format(
                    cpu=rank + 1, task=rank + 1,
                    begin=_nanoseconds(interval.start),
                    end=_nanoseconds(interval.end),
                    state=int(interval.state)))
    # Communication records:
    # 3:cpu:ptask:task:thread:logical_send:physical_send:
    #   cpu:ptask:task:thread:logical_recv:physical_recv:size:tag
    for comm in timeline.communications:
        send_ns = _nanoseconds(comm.send_time)
        recv_ns = _nanoseconds(comm.recv_time)
        lines.append(
            "3:{scpu}:1:{stask}:1:{ls}:{ps}:{rcpu}:1:{rtask}:1:{lr}:{pr}:{size}:{tag}".format(
                scpu=comm.src + 1, stask=comm.src + 1, ls=send_ns, ps=send_ns,
                rcpu=comm.dst + 1, rtask=comm.dst + 1, lr=recv_ns, pr=recv_ns,
                size=comm.size, tag=comm.tag))
    return "\n".join(lines) + "\n"


def export_prv(timeline: Timeline, path: Union[str, Path]) -> Path:
    """Write ``timeline`` to ``path`` in ``.prv`` format and return the path."""
    path = Path(path)
    path.write_text(to_prv(timeline), encoding="utf-8")
    return path
