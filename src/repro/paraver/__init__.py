"""Paraver-like visualisation substrate.

The paper uses Paraver to inspect the reconstructed time behaviours of the
original and overlapped executions, both qualitatively (Gantt views) and
quantitatively (time spent per state).  This package provides:

* :mod:`repro.paraver.states`   -- the thread-state semantics;
* :mod:`repro.paraver.timeline` -- state intervals and communication lines;
* :mod:`repro.paraver.prv`      -- export to the Paraver ``.prv`` text format;
* :mod:`repro.paraver.ascii`    -- ASCII Gantt rendering for terminals;
* :mod:`repro.paraver.compare`  -- quantitative comparison of two timelines.
"""

from repro.paraver.ascii import render_gantt
from repro.paraver.compare import TimelineComparison, compare_timelines
from repro.paraver.prv import export_prv, to_prv
from repro.paraver.states import ThreadState
from repro.paraver.timeline import (
    CommunicationEvent,
    NullRecorder,
    StateInterval,
    Timeline,
)

__all__ = [
    "CommunicationEvent",
    "NullRecorder",
    "StateInterval",
    "ThreadState",
    "Timeline",
    "TimelineComparison",
    "compare_timelines",
    "export_prv",
    "render_gantt",
    "to_prv",
]
