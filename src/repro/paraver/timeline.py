"""State timelines and communication lines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.paraver.states import ThreadState


@dataclass(frozen=True)
class StateInterval:
    """A rank spends [start, end) in ``state``."""

    rank: int
    start: float
    end: float
    state: ThreadState

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise AnalysisError(
                f"interval ends before it starts: [{self.start}, {self.end})")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CommunicationEvent:
    """A message drawn as a communication line between two ranks."""

    src: int
    dst: int
    size: int
    tag: int
    send_time: float
    recv_time: float

    @property
    def flight_time(self) -> float:
        return self.recv_time - self.send_time


@dataclass
class Timeline:
    """Per-rank state intervals plus communication lines.

    A timeline is also the pluggable *recorder* the replay engine writes
    into: callers that never consume timelines (bandwidth sweeps, parameter
    grids) replace it with a :class:`NullRecorder` so the hot loop skips
    every interval allocation.
    """

    num_ranks: int
    intervals: List[StateInterval] = field(default_factory=list)
    communications: List[CommunicationEvent] = field(default_factory=list)
    name: str = "timeline"

    #: Whether this recorder actually retains what is written into it.
    collects = True

    def add_interval(self, rank: int, start: float, end: float,
                     state: ThreadState) -> None:
        """Append a state interval (zero-length intervals are dropped)."""
        if not 0 <= rank < self.num_ranks:
            raise AnalysisError(f"rank {rank} outside timeline of {self.num_ranks} ranks")
        if end - start <= 0:
            return
        self.intervals.append(StateInterval(rank, start, end, state))

    def add_communication(self, src: int, dst: int, size: int, tag: int,
                          send_time: float, recv_time: float) -> None:
        """Append a communication line."""
        self.communications.append(
            CommunicationEvent(src, dst, size, tag, send_time, recv_time))

    # -- queries ----------------------------------------------------------
    @property
    def duration(self) -> float:
        """End of the latest interval (total reconstructed time)."""
        return max((interval.end for interval in self.intervals), default=0.0)

    def rank_intervals(self, rank: int) -> List[StateInterval]:
        """Intervals of one rank, ordered by start time."""
        return sorted((i for i in self.intervals if i.rank == rank),
                      key=lambda interval: (interval.start, interval.end))

    def time_in_state(self, state: ThreadState, rank: Optional[int] = None) -> float:
        """Total time spent in ``state`` (by one rank, or summed over all)."""
        return sum(interval.duration for interval in self.intervals
                   if interval.state == state
                   and (rank is None or interval.rank == rank))

    def state_profile(self, rank: Optional[int] = None) -> Dict[ThreadState, float]:
        """Time per state (one rank, or summed over all ranks)."""
        profile: Dict[ThreadState, float] = {state: 0.0 for state in ThreadState}
        for interval in self.intervals:
            if rank is None or interval.rank == rank:
                profile[interval.state] += interval.duration
        return profile

    def compute_fraction(self) -> float:
        """Fraction of total rank-time spent computing (parallel efficiency)."""
        duration = self.duration
        if duration <= 0:
            return 0.0
        running = self.time_in_state(ThreadState.RUNNING)
        return running / (duration * self.num_ranks)

    def validate(self) -> None:
        """Check that intervals of each rank do not overlap."""
        for rank in range(self.num_ranks):
            previous_end = 0.0
            for interval in self.rank_intervals(rank):
                if interval.start < previous_end - 1e-12:
                    raise AnalysisError(
                        f"rank {rank} has overlapping intervals around t={interval.start}")
                previous_end = max(previous_end, interval.end)

    def state_at(self, rank: int, time: float) -> ThreadState:
        """State of ``rank`` at ``time`` (IDLE outside all intervals)."""
        for interval in self.rank_intervals(rank):
            if interval.start <= time < interval.end:
                return interval.state
        return ThreadState.IDLE


@dataclass
class NullRecorder(Timeline):
    """A timeline recorder that drops everything written into it.

    Used whenever the caller does not consume timelines (metric-only sweep
    tasks, grid cells of an experiment): the replay results then carry a
    structurally valid -- but empty -- :class:`Timeline`, and the replay hot
    loop never allocates a :class:`StateInterval`.  All query methods are
    inherited and report an empty timeline.
    """

    collects = False

    def add_interval(self, rank: int, start: float, end: float,
                     state: ThreadState) -> None:
        """Drop the interval (recording is disabled)."""

    def add_communication(self, src: int, dst: int, size: int, tag: int,
                          send_time: float, recv_time: float) -> None:
        """Drop the communication line (recording is disabled)."""
