"""Thread-state semantics for timelines.

The integer values follow the Paraver convention for the states that exist
there (0 idle, 1 running, 3 waiting a message, 4 blocked in send, 5 in a
collective/synchronisation, 6 waiting for a request).
"""

from __future__ import annotations

from enum import IntEnum


class ThreadState(IntEnum):
    """State of a rank during a timeline interval."""

    IDLE = 0
    RUNNING = 1
    RECV_WAIT = 3
    SEND_WAIT = 4
    COLLECTIVE = 5
    REQUEST_WAIT = 6

    @property
    def label(self) -> str:
        return _LABELS[self]

    @property
    def glyph(self) -> str:
        """One-character symbol used by the ASCII Gantt renderer."""
        return _GLYPHS[self]

    @classmethod
    def blocking_states(cls) -> tuple:
        """States in which the rank makes no computational progress."""
        return (cls.IDLE, cls.RECV_WAIT, cls.SEND_WAIT, cls.COLLECTIVE,
                cls.REQUEST_WAIT)


_LABELS = {
    ThreadState.IDLE: "Idle",
    ThreadState.RUNNING: "Running",
    ThreadState.RECV_WAIT: "Waiting a message",
    ThreadState.SEND_WAIT: "Blocked in send",
    ThreadState.COLLECTIVE: "Group communication",
    ThreadState.REQUEST_WAIT: "Waiting for request",
}

_GLYPHS = {
    ThreadState.IDLE: ".",
    ThreadState.RUNNING: "#",
    ThreadState.RECV_WAIT: "r",
    ThreadState.SEND_WAIT: "s",
    ThreadState.COLLECTIVE: "C",
    ThreadState.REQUEST_WAIT: "w",
}
