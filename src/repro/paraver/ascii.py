"""ASCII Gantt rendering of timelines.

Every rank becomes one row; the simulated time axis is divided into equally
sized columns and each column shows the state the rank spent most of that
column in, using the one-character glyphs defined by
:class:`~repro.paraver.states.ThreadState`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.paraver.states import ThreadState
from repro.paraver.timeline import Timeline


def render_gantt(timeline: Timeline, width: int = 80,
                 title: Optional[str] = None) -> str:
    """Render ``timeline`` as a multi-line ASCII Gantt chart."""
    if width < 10:
        raise AnalysisError(f"gantt width must be >= 10, got {width!r}")
    duration = timeline.duration
    header = title or timeline.name
    lines: List[str] = [f"== {header} (duration {duration:.6f} s) =="]
    if duration <= 0:
        lines.append("(empty timeline)")
        return "\n".join(lines)
    column_width = duration / width
    for rank in range(timeline.num_ranks):
        row = _render_rank_row(timeline, rank, width, column_width)
        lines.append(f"rank {rank:>3} |{row}|")
    lines.append(_legend())
    return "\n".join(lines)


def _render_rank_row(timeline: Timeline, rank: int, width: int,
                     column_width: float) -> str:
    intervals = timeline.rank_intervals(rank)
    glyphs: List[str] = []
    for column in range(width):
        column_start = column * column_width
        column_end = column_start + column_width
        occupancy: Dict[ThreadState, float] = {}
        for interval in intervals:
            if interval.end <= column_start:
                continue
            if interval.start >= column_end:
                break
            overlap = min(interval.end, column_end) - max(interval.start, column_start)
            if overlap > 0:
                occupancy[interval.state] = occupancy.get(interval.state, 0.0) + overlap
        if occupancy:
            dominant = max(occupancy.items(), key=lambda item: item[1])[0]
            glyphs.append(dominant.glyph)
        else:
            glyphs.append(ThreadState.IDLE.glyph)
    return "".join(glyphs)


def _legend() -> str:
    parts = [f"{state.glyph}={state.label}" for state in ThreadState]
    return "legend: " + ", ".join(parts)


def render_side_by_side(first: Timeline, second: Timeline, width: int = 60) -> str:
    """Render two timelines one above the other on a shared time scale.

    The shared scale makes the speedup visually obvious: the shorter
    execution simply stops earlier on the axis.
    """
    shared = max(first.duration, second.duration)
    blocks: List[str] = []
    for timeline in (first, second):
        if shared <= 0:
            blocks.append(f"== {timeline.name} == (empty)")
            continue
        effective_width = max(1, int(round(width * timeline.duration / shared)))
        chart = render_gantt(timeline, width=effective_width, title=timeline.name)
        blocks.append(chart)
    return "\n\n".join(blocks)
