"""Synthetic MPI abstractions.

The application models and the trace validator need a small amount of MPI
machinery: datatypes (to size messages), communicators and process
topologies (to lay out neighbours), request handles and a cross-rank
matching validator that checks a trace is a consistent MPI program (every
send has a matching receive, collectives are entered by all ranks in the
same order with compatible parameters).
"""

from repro.mpi.communicator import Communicator
from repro.mpi.datatypes import (
    BYTE,
    COMPLEX,
    DOUBLE,
    FLOAT,
    INT,
    Datatype,
)
from repro.mpi.topology import CartesianTopology, GraphTopology
from repro.mpi.validation import MatchingValidator, ValidationReport

__all__ = [
    "BYTE",
    "COMPLEX",
    "CartesianTopology",
    "Communicator",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "GraphTopology",
    "INT",
    "MatchingValidator",
    "ValidationReport",
]
