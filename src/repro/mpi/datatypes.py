"""MPI datatypes (only the size matters for the simulation)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Datatype:
    """An MPI datatype with a name and a size in bytes."""

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(
                f"datatype size must be positive, got {self.size!r}")

    def contiguous(self, count: int) -> "Datatype":
        """A derived datatype of ``count`` contiguous elements."""
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count!r}")
        return Datatype(f"{self.name}[{count}]", self.size * count)

    def vector(self, count: int, blocklength: int, stride: int) -> "Datatype":
        """A strided (vector) datatype; only the payload size is modelled."""
        if count <= 0 or blocklength <= 0:
            raise ConfigurationError("count and blocklength must be positive")
        if stride < blocklength:
            raise ConfigurationError("stride must be >= blocklength")
        return Datatype(
            f"{self.name}_vector({count},{blocklength},{stride})",
            self.size * count * blocklength)


BYTE = Datatype("MPI_BYTE", 1)
INT = Datatype("MPI_INT", 4)
FLOAT = Datatype("MPI_FLOAT", 4)
DOUBLE = Datatype("MPI_DOUBLE", 8)
COMPLEX = Datatype("MPI_DOUBLE_COMPLEX", 16)

#: All predefined datatypes keyed by name.
PREDEFINED = {dt.name: dt for dt in (BYTE, INT, FLOAT, DOUBLE, COMPLEX)}
