"""Cross-rank trace validation.

The replay simulator assumes the trace describes a deadlock-free, matched
MPI program.  The :class:`MatchingValidator` checks that assumption right
after tracing:

* every send from ``src`` to ``dst`` with a given tag has a matching receive
  (same ordinal within the (src, dst, tag) stream) with the same size;
* every non-blocking request is waited for exactly once;
* all ranks execute the same sequence of collectives with compatible
  parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import MatchingError
from repro.tracing.records import CollectiveRecord, RecvRecord, SendRecord, WaitRecord
from repro.tracing.trace import Trace


@dataclass
class ValidationReport:
    """Summary of a successful validation."""

    num_messages: int = 0
    num_collectives: int = 0
    num_requests: int = 0
    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues


class MatchingValidator:
    """Checks that a trace is a consistent MPI program."""

    def __init__(self, strict: bool = True):
        self.strict = strict

    def validate(self, trace: Trace) -> ValidationReport:
        """Validate ``trace``; raise :class:`MatchingError` when strict."""
        report = ValidationReport()
        self._check_point_to_point(trace, report)
        self._check_requests(trace, report)
        self._check_collectives(trace, report)
        if self.strict and report.issues:
            raise MatchingError("; ".join(report.issues[:10]))
        return report

    # -- point-to-point -----------------------------------------------------
    def _check_point_to_point(self, trace: Trace, report: ValidationReport) -> None:
        sends: Dict[Tuple[int, int, int], List[SendRecord]] = {}
        recvs: Dict[Tuple[int, int, int], List[RecvRecord]] = {}
        for rank_trace in trace:
            for record in rank_trace:
                if isinstance(record, SendRecord):
                    sends.setdefault((rank_trace.rank, record.dst, record.tag),
                                     []).append(record)
                elif isinstance(record, RecvRecord):
                    recvs.setdefault((record.src, rank_trace.rank, record.tag),
                                     []).append(record)
        for key, send_list in sends.items():
            recv_list = recvs.get(key, [])
            src, dst, tag = key
            if len(send_list) != len(recv_list):
                report.issues.append(
                    f"{len(send_list)} sends but {len(recv_list)} receives "
                    f"for src={src} dst={dst} tag={tag}")
                continue
            for ordinal, (send, recv) in enumerate(zip(send_list, recv_list)):
                if send.size != recv.size:
                    report.issues.append(
                        f"size mismatch for message {ordinal} src={src} dst={dst} "
                        f"tag={tag}: send {send.size} bytes, recv {recv.size} bytes")
                if send.pair_seq != ordinal or recv.pair_seq != ordinal:
                    report.issues.append(
                        f"inconsistent pair sequence for message {ordinal} "
                        f"src={src} dst={dst} tag={tag}")
            report.num_messages += len(send_list)
        for key, recv_list in recvs.items():
            if key not in sends:
                src, dst, tag = key
                report.issues.append(
                    f"{len(recv_list)} receives without any send "
                    f"for src={src} dst={dst} tag={tag}")

    # -- requests ----------------------------------------------------------
    def _check_requests(self, trace: Trace, report: ValidationReport) -> None:
        for rank_trace in trace:
            issued = set()
            waited: List[int] = []
            for record in rank_trace:
                if isinstance(record, (SendRecord, RecvRecord)) and not record.blocking:
                    if record.request is None:
                        report.issues.append(
                            f"rank {rank_trace.rank}: non-blocking record without request id")
                    else:
                        issued.add(record.request)
                elif isinstance(record, WaitRecord):
                    waited.extend(record.requests)
            report.num_requests += len(issued)
            waited_set = set(waited)
            if len(waited) != len(waited_set):
                report.issues.append(
                    f"rank {rank_trace.rank}: some requests are waited for more than once")
            missing = issued - waited_set
            if missing:
                report.issues.append(
                    f"rank {rank_trace.rank}: requests never waited for: {sorted(missing)}")
            unknown = waited_set - issued
            if unknown:
                report.issues.append(
                    f"rank {rank_trace.rank}: waits on unknown requests: {sorted(unknown)}")

    # -- collectives ----------------------------------------------------------
    def _check_collectives(self, trace: Trace, report: ValidationReport) -> None:
        sequences = []
        for rank_trace in trace:
            sequences.append([
                (record.operation, record.root)
                for record in rank_trace
                if isinstance(record, CollectiveRecord)
            ])
        reference = sequences[0]
        for rank, sequence in enumerate(sequences[1:], start=1):
            if len(sequence) != len(reference):
                report.issues.append(
                    f"rank {rank} executes {len(sequence)} collectives, "
                    f"rank 0 executes {len(reference)}")
                continue
            for index, (entry, expected) in enumerate(zip(sequence, reference)):
                if entry != expected:
                    report.issues.append(
                        f"collective {index} differs between rank 0 {expected} "
                        f"and rank {rank} {entry}")
                    break
        report.num_collectives = len(reference)
