"""Process topologies used by the application models."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


class CartesianTopology:
    """An N-dimensional Cartesian process grid (MPI_Cart semantics)."""

    def __init__(self, dims: Sequence[int], periodic: Optional[Sequence[bool]] = None):
        dims = list(dims)
        if not dims or any(d < 1 for d in dims):
            raise ConfigurationError(f"invalid Cartesian dimensions: {dims}")
        if periodic is None:
            periodic = [False] * len(dims)
        periodic = list(periodic)
        if len(periodic) != len(dims):
            raise ConfigurationError("periodic flags must match the number of dimensions")
        self.dims = dims
        self.periodic = periodic

    @classmethod
    def square(cls, num_ranks: int, ndims: int = 2,
               periodic: bool = False) -> "CartesianTopology":
        """A balanced grid for ``num_ranks`` processes (MPI_Dims_create-like)."""
        dims = balanced_dims(num_ranks, ndims)
        return cls(dims, [periodic] * ndims)

    @property
    def size(self) -> int:
        product = 1
        for dim in self.dims:
            product *= dim
        return product

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords(self, rank: int) -> Tuple[int, ...]:
        """Cartesian coordinates of ``rank`` (row-major order)."""
        if not 0 <= rank < self.size:
            raise ConfigurationError(f"rank {rank} outside grid of size {self.size}")
        coords = []
        remainder = rank
        for dim in reversed(self.dims):
            coords.append(remainder % dim)
            remainder //= dim
        return tuple(reversed(coords))

    def rank(self, coords: Sequence[int]) -> int:
        """Rank at the given coordinates."""
        coords = list(coords)
        if len(coords) != self.ndims:
            raise ConfigurationError(
                f"expected {self.ndims} coordinates, got {len(coords)}")
        rank = 0
        for dim, coord in zip(self.dims, coords):
            if not 0 <= coord < dim:
                raise ConfigurationError(f"coordinate {coord} outside dimension {dim}")
            rank = rank * dim + coord
        return rank

    def shift(self, rank: int, dimension: int, displacement: int) -> Optional[int]:
        """Neighbour of ``rank`` along ``dimension`` (None outside a non-periodic edge)."""
        if not 0 <= dimension < self.ndims:
            raise ConfigurationError(f"invalid dimension {dimension}")
        coords = list(self.coords(rank))
        coords[dimension] += displacement
        dim = self.dims[dimension]
        if self.periodic[dimension]:
            coords[dimension] %= dim
        elif not 0 <= coords[dimension] < dim:
            return None
        return self.rank(coords)

    def neighbors(self, rank: int) -> Dict[Tuple[int, int], int]:
        """All face neighbours keyed by (dimension, direction)."""
        result: Dict[Tuple[int, int], int] = {}
        for dimension in range(self.ndims):
            for direction in (-1, +1):
                neighbor = self.shift(rank, dimension, direction)
                if neighbor is not None and neighbor != rank:
                    result[(dimension, direction)] = neighbor
        return result


class GraphTopology:
    """An explicit neighbour graph (MPI_Graph semantics)."""

    def __init__(self, adjacency: Dict[int, Sequence[int]]):
        if not adjacency:
            raise ConfigurationError("graph topology needs at least one vertex")
        self._adjacency = {rank: list(peers) for rank, peers in adjacency.items()}
        size = max(self._adjacency) + 1
        for rank, peers in self._adjacency.items():
            for peer in peers:
                if not 0 <= peer < size:
                    raise ConfigurationError(
                        f"neighbour {peer} of rank {rank} outside topology")
        self._size = size

    @property
    def size(self) -> int:
        return self._size

    def neighbors(self, rank: int) -> List[int]:
        return list(self._adjacency.get(rank, []))

    def degree(self, rank: int) -> int:
        return len(self._adjacency.get(rank, []))

    def is_symmetric(self) -> bool:
        """True if every edge has a reverse edge (needed for exchanges)."""
        return all(rank in self._adjacency.get(peer, [])
                   for rank, peers in self._adjacency.items()
                   for peer in peers)


def balanced_dims(num_ranks: int, ndims: int) -> List[int]:
    """Factor ``num_ranks`` into ``ndims`` balanced dimensions.

    Mirrors the behaviour of ``MPI_Dims_create``: the product of the returned
    dimensions equals ``num_ranks`` and the dimensions are as close to each
    other as possible.
    """
    if num_ranks < 1:
        raise ConfigurationError(f"num_ranks must be >= 1, got {num_ranks!r}")
    if ndims < 1:
        raise ConfigurationError(f"ndims must be >= 1, got {ndims!r}")
    dims = [1] * ndims
    remaining = num_ranks
    # Greedily assign prime factors (largest first) to the smallest dimension.
    for factor in _prime_factors(remaining):
        smallest = dims.index(min(dims))
        dims[smallest] *= factor
    dims.sort(reverse=True)
    return dims


def _prime_factors(value: int) -> List[int]:
    factors: List[int] = []
    divisor = 2
    while divisor * divisor <= value:
        while value % divisor == 0:
            factors.append(divisor)
            value //= divisor
        divisor += 1
    if value > 1:
        factors.append(value)
    factors.sort(reverse=True)
    return factors
