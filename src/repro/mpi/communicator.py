"""Communicators: ordered groups of ranks."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError


class Communicator:
    """An ordered group of world ranks.

    The simulation itself replays world ranks; communicators are used by the
    application models to organise neighbourhoods and sub-groups (e.g. row
    and column communicators of a 2-D decomposition).
    """

    def __init__(self, ranks: Sequence[int], name: str = "comm"):
        ranks = list(ranks)
        if not ranks:
            raise ConfigurationError("a communicator cannot be empty")
        if len(set(ranks)) != len(ranks):
            raise ConfigurationError(f"duplicate ranks in communicator: {ranks}")
        if any(r < 0 for r in ranks):
            raise ConfigurationError(f"negative rank in communicator: {ranks}")
        self.name = name
        self._ranks = ranks

    @classmethod
    def world(cls, size: int) -> "Communicator":
        """The world communicator of ``size`` ranks."""
        if size < 1:
            raise ConfigurationError(f"world size must be >= 1, got {size!r}")
        return cls(list(range(size)), name="MPI_COMM_WORLD")

    @property
    def size(self) -> int:
        return len(self._ranks)

    @property
    def ranks(self) -> List[int]:
        return list(self._ranks)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ranks)

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._ranks

    def rank_of(self, world_rank: int) -> int:
        """Local rank of a world rank inside this communicator."""
        try:
            return self._ranks.index(world_rank)
        except ValueError:
            raise ConfigurationError(
                f"world rank {world_rank} is not part of {self.name}") from None

    def world_rank(self, local_rank: int) -> int:
        """World rank of a local rank."""
        if not 0 <= local_rank < self.size:
            raise ConfigurationError(
                f"local rank {local_rank} outside communicator of size {self.size}")
        return self._ranks[local_rank]

    def split(self, color_of: Sequence[int], name: Optional[str] = None) -> List["Communicator"]:
        """Split into sub-communicators by colour (one colour per member)."""
        if len(color_of) != self.size:
            raise ConfigurationError(
                "split() needs exactly one colour per communicator member")
        groups = {}
        for local, color in enumerate(color_of):
            groups.setdefault(color, []).append(self._ranks[local])
        return [
            Communicator(members, name=f"{name or self.name}.{color}")
            for color, members in sorted(groups.items())
        ]

    def __repr__(self) -> str:
        return f"Communicator({self.name!r}, size={self.size})"
