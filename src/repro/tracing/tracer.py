"""The per-rank tracing tool.

The tracer mirrors the paper's Valgrind tool: it timestamps execution in
instructions, closes a computation burst whenever the application enters an
MPI call, and records on every point-to-point record the store events
(production) and load events (consumption) observed on the message buffer.

Clamping rules (documented in DESIGN.md):

* production events are attributed to the closed computation burst in which
  the store actually happened, identified by its record index;
* consumption events are collected from the first *non-empty* computation
  burst that follows the receive (or the wait of a non-blocking receive);
  loads that happen later than that burst are ignored, which makes the
  estimate of the overlapping potential conservative.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TracingError
from repro.tracing.buffers import Buffer
from repro.tracing.records import (
    AccessEvent,
    CollectiveRecord,
    CpuBurst,
    Record,
    RecvRecord,
    SendRecord,
    WaitRecord,
)
from repro.tracing.trace import RankTrace


@dataclass
class _ClosedBurst:
    """Bookkeeping entry for an already emitted computation burst."""

    record_index: int
    start: float
    end: float


@dataclass
class _ConsumptionWatch:
    """Pending consumption annotation of a posted receive."""

    buffer_name: str
    record: RecvRecord
    reads: List[Tuple[float, float, float]] = field(default_factory=list)


class RankTracer:
    """Builds the annotated trace of a single rank."""

    def __init__(self, rank: int, num_ranks: int):
        if not 0 <= rank < num_ranks:
            raise TracingError(f"rank {rank} outside communicator of size {num_ranks}")
        self.rank = rank
        self.num_ranks = num_ranks
        self.records: List[Record] = []
        self._instructions = 0.0
        self._burst_instructions = 0.0
        self._burst_start = 0.0
        self._closed_bursts: List[_ClosedBurst] = []
        self._burst_starts: List[float] = []
        # Store events per buffer since that buffer's previous send.
        self._writes: Dict[str, List[Tuple[float, float, float]]] = {}
        # Consumption watches waiting for their following burst.
        self._armed_watches: List[_ConsumptionWatch] = []
        # Watches of non-blocking receives, armed at the matching wait.
        self._request_watches: Dict[int, _ConsumptionWatch] = {}
        self._send_seq: Dict[Tuple[int, int], int] = {}
        self._recv_seq: Dict[Tuple[int, int], int] = {}
        self._next_request = 0
        self._finalized = False

    # -- time ------------------------------------------------------------
    @property
    def instructions(self) -> float:
        """Instructions executed so far on this rank."""
        return self._instructions

    def compute(self, instructions: float) -> None:
        """Advance the instruction counter inside the current burst."""
        self._check_open()
        if instructions < 0:
            raise TracingError(f"negative computation length: {instructions!r}")
        self._instructions += float(instructions)
        self._burst_instructions += float(instructions)

    # -- memory accesses ---------------------------------------------------
    def write(self, buffer: Buffer, lo: float = 0.0, hi: float = 1.0) -> None:
        """Record a store on ``buffer`` covering the fraction ``[lo, hi)``."""
        self._check_open()
        self._check_range(lo, hi)
        self._writes.setdefault(buffer.name, []).append((self._instructions, lo, hi))

    def read(self, buffer: Buffer, lo: float = 0.0, hi: float = 1.0) -> None:
        """Record a load on ``buffer`` covering the fraction ``[lo, hi)``."""
        self._check_open()
        self._check_range(lo, hi)
        for watch in self._armed_watches:
            if watch.buffer_name == buffer.name:
                watch.reads.append((self._instructions, lo, hi))

    # -- point-to-point ------------------------------------------------------
    def send(self, dst: int, size: int, tag: int = 0,
             buffer: Optional[Buffer] = None, blocking: bool = True) -> Optional[int]:
        """Record a send; returns the request id for a non-blocking send."""
        self._check_open()
        self._check_peer(dst)
        self._close_burst()
        request = None if blocking else self._new_request()
        record = SendRecord(
            dst=dst, size=int(size), tag=int(tag), blocking=blocking,
            request=request, buffer=buffer.name if buffer is not None else None,
            pair_seq=self._next_seq(self._send_seq, dst, tag),
            production=self._collect_production(buffer))
        self.records.append(record)
        return request

    def recv(self, src: int, size: int, tag: int = 0,
             buffer: Optional[Buffer] = None, blocking: bool = True) -> Optional[int]:
        """Record a receive; returns the request id for a non-blocking receive."""
        self._check_open()
        self._check_peer(src)
        self._close_burst()
        request = None if blocking else self._new_request()
        record = RecvRecord(
            src=src, size=int(size), tag=int(tag), blocking=blocking,
            request=request, buffer=buffer.name if buffer is not None else None,
            pair_seq=self._next_seq(self._recv_seq, src, tag))
        self.records.append(record)
        if buffer is not None:
            watch = _ConsumptionWatch(buffer.name, record)
            if blocking:
                self._armed_watches.append(watch)
            else:
                self._request_watches[request] = watch
        return request

    def wait(self, requests: Sequence[int]) -> None:
        """Record a wait on previously issued non-blocking requests."""
        self._check_open()
        requests = list(requests)
        if not requests:
            raise TracingError("wait() needs at least one request")
        self._close_burst()
        self.records.append(WaitRecord(requests=requests))
        for request in requests:
            watch = self._request_watches.pop(request, None)
            if watch is not None:
                self._armed_watches.append(watch)

    # -- collectives ---------------------------------------------------------
    def collective(self, operation: str, size: int = 0, root: int = 0) -> None:
        """Record a collective operation."""
        self._check_open()
        self._close_burst()
        self.records.append(CollectiveRecord(
            operation=operation, size=int(size), root=int(root),
            comm_size=self.num_ranks))

    # -- lifecycle -------------------------------------------------------------
    def finalize(self) -> RankTrace:
        """Close the trace of this rank and return it."""
        self._check_open()
        self._close_burst()
        self._finalized = True
        return RankTrace(rank=self.rank, records=self.records)

    # -- internals ---------------------------------------------------------------
    def _check_open(self) -> None:
        if self._finalized:
            raise TracingError("the tracer has already been finalized")

    @staticmethod
    def _check_range(lo: float, hi: float) -> None:
        if not (0.0 <= lo < hi <= 1.0 + 1e-12):
            raise TracingError(f"invalid buffer fraction range [{lo}, {hi})")

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.num_ranks:
            raise TracingError(
                f"peer rank {peer} outside communicator of size {self.num_ranks}")
        if peer == self.rank:
            raise TracingError("a rank cannot send to or receive from itself")

    def _new_request(self) -> int:
        request = self._next_request
        self._next_request += 1
        return request

    @staticmethod
    def _next_seq(table: Dict[Tuple[int, int], int], peer: int, tag: int) -> int:
        seq = table.get((peer, tag), 0)
        table[(peer, tag)] = seq + 1
        return seq

    def _close_burst(self) -> None:
        """Emit the accumulated burst (if non-empty) and bind armed watches."""
        if self._burst_instructions <= 0.0:
            return
        index = len(self.records)
        self.records.append(CpuBurst(instructions=self._burst_instructions))
        self._closed_bursts.append(
            _ClosedBurst(record_index=index, start=self._burst_start,
                         end=self._instructions))
        self._burst_starts.append(self._burst_start)
        for watch in self._armed_watches:
            watch.record.consumption = [
                AccessEvent(burst_index=index, offset=instr - self._burst_start,
                            lo=lo, hi=hi)
                for (instr, lo, hi) in watch.reads
                if instr >= self._burst_start]
        self._armed_watches = []
        self._burst_instructions = 0.0
        self._burst_start = self._instructions

    def _collect_production(self, buffer: Optional[Buffer]) -> List[AccessEvent]:
        """Turn the store log of ``buffer`` into production events."""
        if buffer is None:
            return []
        writes = self._writes.pop(buffer.name, [])
        events: List[AccessEvent] = []
        for instr, lo, hi in writes:
            burst = self._find_burst(instr)
            if burst is None:
                continue
            events.append(AccessEvent(
                burst_index=burst.record_index,
                offset=min(instr - burst.start, burst.end - burst.start),
                lo=lo, hi=hi))
        return events

    def _find_burst(self, instruction: float) -> Optional[_ClosedBurst]:
        """The closed burst whose instruction interval contains ``instruction``."""
        if not self._closed_bursts:
            return None
        position = bisect_right(self._burst_starts, instruction) - 1
        if position < 0:
            return None
        # An access on the boundary between two bursts belongs to the earlier
        # one (the data was already produced when that burst ended).
        for index in (position - 1, position):
            if index < 0:
                continue
            candidate = self._closed_bursts[index]
            if candidate.start <= instruction <= candidate.end:
                return candidate
        # The access happened in a zero-length gap between bursts; attribute
        # it to the next burst at offset zero if one exists.
        if position + 1 < len(self._closed_bursts):
            following = self._closed_bursts[position + 1]
            return _ClosedBurst(record_index=following.record_index,
                                start=instruction, end=instruction)
        return None
