"""Trace containers and (de)serialisation."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple, Type, Union

from repro.errors import TraceFormatError
from repro.tracing.records import (
    CollectiveRecord,
    CpuBurst,
    Record,
    RecvRecord,
    SendRecord,
    WaitRecord,
)
from repro.tracing.timebase import DEFAULT_MIPS

# -- replay preparation --------------------------------------------------------
# Opcodes of the prepared (replay-ready) record stream.  The replay engine
# dispatches on these small integers instead of running an ``isinstance``
# chain per record; the mapping from record class to opcode is computed once
# per trace (see :meth:`Trace.prepared`), not once per replayed record.
OP_CPU = 0
OP_SEND = 1
OP_RECV = 2
OP_WAIT = 3
OP_COLLECTIVE = 4
#: A fused segment: a maximal run of consecutive CPU bursts (plus the MPI
#: overhead charge of the record that follows the run, when one exists)
#: collapsed into one array-backed unit the compiled replay backend
#: advances with a single timeout (see :class:`FusedSegment`).
OP_FUSED = 5
#: Records of a type the replay engine does not know (surface at replay).
OP_UNKNOWN = -1

#: The precomputed record-type dispatch table.
RECORD_OPCODES: Dict[type, int] = {
    CpuBurst: OP_CPU,
    SendRecord: OP_SEND,
    RecvRecord: OP_RECV,
    WaitRecord: OP_WAIT,
    CollectiveRecord: OP_COLLECTIVE,
}


class FusedSegment:
    """A maximal run of conflict-free records compiled to plain arrays.

    The compiled replay backend advances a whole segment with **one**
    timeout: ``instructions`` holds the per-burst instruction counts in
    record order (the replay walks ``t = t + instructions / denominator``
    per entry, exactly the float-expression order of the per-record loop,
    so the wake-up instant and the accumulated ``compute_time`` stay
    bit-identical); ``trailing_overhead`` records whether a non-CPU record
    follows the run, in which case its ``mpi_overhead`` charge (when the
    platform charges one) is folded into the same timeout and the follower
    entry carries ``overhead_folded=True``.

    ``start``/``end`` are the original record positions covered by the
    bursts (half-open), kept for progress/deadlock reporting.
    """

    __slots__ = ("instructions", "start", "end", "trailing_overhead")

    def __init__(self, instructions: Tuple[float, ...], start: int, end: int,
                 trailing_overhead: bool):
        self.instructions = instructions
        self.start = start
        self.end = end
        self.trailing_overhead = trailing_overhead

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FusedSegment(records={self.start}..{self.end}, "
                f"bursts={len(self.instructions)}, "
                f"trailing_overhead={self.trailing_overhead})")


@dataclass
class PreparedTrace:
    """A trace normalised for replay: opcode-tagged record streams.

    ``ops[rank]`` is the rank's record list with every record paired with
    its dispatch opcode.  Prepared traces are built once per
    :class:`Trace` object and cached (:meth:`Trace.prepared`), so a sweep
    that replays the same trace on dozens of platforms normalises it once
    instead of once per task.

    :meth:`fused_ops` additionally compiles the segment-fused form used by
    the ``compiled`` replay backend; it is built lazily (the default
    ``event`` backend never pays for it) and cached on the instance, so it
    is shared through the same digest-keyed memo as the plain streams.
    """

    ops: List[List[Tuple[int, Record]]]

    @classmethod
    def compile(cls, trace: "Trace") -> "PreparedTrace":
        opcode_of = RECORD_OPCODES
        ops = [[(opcode_of.get(type(record), OP_UNKNOWN), record)
                for record in rank_trace.records]
               for rank_trace in trace.ranks]
        return cls(ops=ops)

    # -- segment fusion ----------------------------------------------------
    def fused_ops(self) -> List[List[Tuple[int, Any, int, bool]]]:
        """The segment-fused entry streams of every rank, built lazily.

        Entries are uniform 4-tuples ``(opcode, payload, position,
        overhead_folded)``: ``payload`` is the original record (or the
        :class:`FusedSegment` for ``OP_FUSED``), ``position`` the original
        record index (segment start for fused entries), and
        ``overhead_folded`` marks a record whose MPI-overhead charge the
        preceding segment already accounted for.
        """
        fused = getattr(self, "_fused", None)
        if fused is None:
            fused = [_fuse_rank_ops(rank_ops) for rank_ops in self.ops]
            self._fused = fused
        return fused


def _fuse_rank_ops(rank_ops) -> List[Tuple[int, Any, int, bool]]:
    """Collapse maximal runs of CPU bursts of one rank into fused segments.

    Only ``OP_CPU`` records can be fused: they have no cross-rank side
    effects, so (absent CPU contention, which the replay engine checks
    before selecting this stream) their wake-up instants are a pure local
    computation.  The record following a run is emitted with
    ``overhead_folded=True`` so its per-call MPI overhead rides on the
    segment's single timeout instead of a second one.
    """
    entries: List[Tuple[int, Any, int, bool]] = []
    index = 0
    total = len(rank_ops)
    while index < total:
        op, record = rank_ops[index]
        if op != OP_CPU:
            entries.append((op, record, index, False))
            index += 1
            continue
        run_end = index + 1
        while run_end < total and rank_ops[run_end][0] == OP_CPU:
            run_end += 1
        trailing = run_end < total
        segment = FusedSegment(
            instructions=tuple(rank_ops[k][1].instructions
                               for k in range(index, run_end)),
            start=index, end=run_end, trailing_overhead=trailing)
        entries.append((OP_FUSED, segment, index, False))
        if trailing:
            next_op, next_record = rank_ops[run_end]
            entries.append((next_op, next_record, run_end, True))
            run_end += 1
        index = run_end
    return entries


# -- digest-keyed preparation sharing ------------------------------------------
# Compiled record streams shared *by content* across Trace objects.  A sweep
# worker (or a long-running experiment process) that deserialises the same
# trace content repeatedly -- one Trace object per run -- reuses the compiled
# stream instead of recompiling it, as long as the content digest is known
# (either computed via :meth:`Trace.digest` or adopted from the producer of
# the serialized form via :meth:`Trace.adopt_digest`).  Records are never
# mutated after construction, so sharing by content is safe.
_PREPARED_BY_DIGEST: Dict[str, PreparedTrace] = {}

#: Cap on the shared-preparation memo; a long-running service replaying many
#: distinct traces must not grow it without bound (reset, not LRU -- the
#: memo is a fast-path, correctness never depends on a hit).
_PREPARED_MEMO_LIMIT = 128


def _share_prepared(digest: str, prepared: PreparedTrace) -> PreparedTrace:
    """Register (or return the already-shared) preparation for ``digest``."""
    shared = _PREPARED_BY_DIGEST.get(digest)
    if shared is not None:
        return shared
    if len(_PREPARED_BY_DIGEST) >= _PREPARED_MEMO_LIMIT:
        _PREPARED_BY_DIGEST.clear()
    _PREPARED_BY_DIGEST[digest] = prepared
    return prepared


@dataclass
class RankTrace:
    """The ordered record list of one MPI process."""

    rank: int
    records: List[Record] = field(default_factory=list)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    # -- aggregate views -------------------------------------------------
    def total_instructions(self) -> float:
        """Instructions over all computation bursts of this rank."""
        return sum(r.instructions for r in self.records if isinstance(r, CpuBurst))

    def bytes_sent(self) -> int:
        return sum(r.size for r in self.records if isinstance(r, SendRecord))

    def bytes_received(self) -> int:
        return sum(r.size for r in self.records if isinstance(r, RecvRecord))

    def count(self, record_type: Type[Record]) -> int:
        """Number of records of the given type."""
        return sum(1 for r in self.records if isinstance(r, record_type))

    def sends(self) -> List[SendRecord]:
        return [r for r in self.records if isinstance(r, SendRecord)]

    def recvs(self) -> List[RecvRecord]:
        return [r for r in self.records if isinstance(r, RecvRecord)]

    def collectives(self) -> List[CollectiveRecord]:
        return [r for r in self.records if isinstance(r, CollectiveRecord)]

    def bursts(self) -> List[CpuBurst]:
        return [r for r in self.records if isinstance(r, CpuBurst)]

    def waits(self) -> List[WaitRecord]:
        return [r for r in self.records if isinstance(r, WaitRecord)]

    def to_dict(self) -> Dict[str, Any]:
        return {"rank": self.rank, "records": [r.to_dict() for r in self.records]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RankTrace":
        return cls(rank=int(data["rank"]),
                   records=[Record.from_dict(r) for r in data.get("records", [])])


@dataclass
class Trace:
    """A complete application trace: one :class:`RankTrace` per process."""

    ranks: List[RankTrace]
    mips: float = DEFAULT_MIPS
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.ranks:
            raise TraceFormatError("a trace must contain at least one rank")
        expected = list(range(len(self.ranks)))
        actual = [rank_trace.rank for rank_trace in self.ranks]
        if actual != expected:
            raise TraceFormatError(
                f"rank traces must be numbered 0..N-1 in order, got {actual}")
        if self.mips <= 0:
            raise TraceFormatError(f"MIPS rate must be positive, got {self.mips!r}")

    @property
    def num_ranks(self) -> int:
        return len(self.ranks)

    def __getitem__(self, rank: int) -> RankTrace:
        return self.ranks[rank]

    def __iter__(self) -> Iterator[RankTrace]:
        return iter(self.ranks)

    # -- aggregate views -------------------------------------------------
    def total_instructions(self) -> float:
        return sum(rank_trace.total_instructions() for rank_trace in self.ranks)

    def total_bytes(self) -> int:
        return sum(rank_trace.bytes_sent() for rank_trace in self.ranks)

    def total_messages(self) -> int:
        return sum(rank_trace.count(SendRecord) for rank_trace in self.ranks)

    def describe(self) -> Dict[str, Any]:
        """A small summary used by the CLI and the reports."""
        return {
            "name": self.metadata.get("name", "unknown"),
            "num_ranks": self.num_ranks,
            "mips": self.mips,
            "total_instructions": self.total_instructions(),
            "total_bytes": self.total_bytes(),
            "total_messages": self.total_messages(),
            "records": sum(len(rank_trace) for rank_trace in self.ranks),
        }

    # -- replay preparation -------------------------------------------------
    def prepared(self) -> PreparedTrace:
        """The replay-ready (opcode-tagged) form of this trace, cached.

        The first call compiles the record lists; later calls -- e.g. every
        further platform point of a sweep -- return the cached object.  The
        cache lives on the :class:`Trace` instance (records are never
        mutated after construction), so any executor or worker that keeps a
        trace alive reuses its preparation for free.
        """
        prepared = getattr(self, "_prepared", None)
        if prepared is None:
            digest = getattr(self, "_digest", None)
            if digest is not None:
                prepared = _PREPARED_BY_DIGEST.get(digest)
            if prepared is None:
                prepared = PreparedTrace.compile(self)
                if digest is not None:
                    prepared = _share_prepared(digest, prepared)
            self._prepared = prepared
        return prepared

    # -- content addressing --------------------------------------------------
    def digest(self) -> str:
        """A stable SHA-256 digest of the replay-relevant trace content.

        Computed from the canonical serialisation of the prepared record
        stream plus the trace's MIPS rate -- the two inputs that fully
        determine replay results -- and *not* from ``metadata`` (labels,
        provenance) or object identity: two traces with equal records hash
        equally no matter how they were built.  The digest is cached on the
        instance, and computing it registers this trace's compiled record
        stream in a process-wide content-keyed memo, so later objects with
        the same content (e.g. re-deserialised sweep variants) skip
        recompilation (see :meth:`adopt_digest`).
        """
        digest = getattr(self, "_digest", None)
        if digest is None:
            payload = {
                "mips": self.mips,
                "ranks": [[record.to_dict() for _, record in rank_ops]
                          for rank_ops in self.prepared().ops],
            }
            text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
            self._digest = digest
            self._prepared = _share_prepared(digest, self._prepared)
        return digest

    def adopt_digest(self, digest: str) -> "Trace":
        """Adopt a digest computed by the producer of this trace's content.

        Sweep workers receive serialized traces whose digest the parent
        process already computed; adopting it (instead of re-hashing) lets
        :meth:`prepared` reuse a content-identical compiled stream and makes
        the later :meth:`digest` call free.  The caller asserts the digest
        matches the content -- adopt only digests produced by
        :meth:`digest` on an equal trace.
        """
        self._digest = digest
        return self

    # -- (de)serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "mips": self.mips,
            "metadata": dict(self.metadata),
            "ranks": [rank_trace.to_dict() for rank_trace in self.ranks],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Trace":
        return cls(
            ranks=[RankTrace.from_dict(r) for r in data.get("ranks", [])],
            mips=float(data.get("mips", DEFAULT_MIPS)),
            metadata=dict(data.get("metadata", {})))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace to a JSON file and return the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict()), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written with :meth:`save`."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise TraceFormatError(f"cannot read trace file {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path} is not a valid trace file: {exc}") from exc
        return cls.from_dict(data)

    def with_metadata(self, **updates: Any) -> "Trace":
        """A shallow copy of the trace with extra metadata entries."""
        merged = dict(self.metadata)
        merged.update(updates)
        return Trace(ranks=self.ranks, mips=self.mips, metadata=merged)
