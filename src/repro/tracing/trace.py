"""Trace containers and (de)serialisation."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple, Type, Union

from repro.errors import TraceFormatError
from repro.tracing.records import (
    CollectiveRecord,
    CpuBurst,
    Record,
    RecvRecord,
    SendRecord,
    WaitRecord,
)
from repro.tracing.timebase import DEFAULT_MIPS

# -- replay preparation --------------------------------------------------------
# Opcodes of the prepared (replay-ready) record stream.  The replay engine
# dispatches on these small integers instead of running an ``isinstance``
# chain per record; the mapping from record class to opcode is computed once
# per trace (see :meth:`Trace.prepared`), not once per replayed record.
OP_CPU = 0
OP_SEND = 1
OP_RECV = 2
OP_WAIT = 3
OP_COLLECTIVE = 4
#: Records of a type the replay engine does not know (surface at replay).
OP_UNKNOWN = -1

#: The precomputed record-type dispatch table.
RECORD_OPCODES: Dict[type, int] = {
    CpuBurst: OP_CPU,
    SendRecord: OP_SEND,
    RecvRecord: OP_RECV,
    WaitRecord: OP_WAIT,
    CollectiveRecord: OP_COLLECTIVE,
}


@dataclass
class PreparedTrace:
    """A trace normalised for replay: opcode-tagged record streams.

    ``ops[rank]`` is the rank's record list with every record paired with
    its dispatch opcode.  Prepared traces are built once per
    :class:`Trace` object and cached (:meth:`Trace.prepared`), so a sweep
    that replays the same trace on dozens of platforms normalises it once
    instead of once per task.
    """

    ops: List[List[Tuple[int, Record]]]

    @classmethod
    def compile(cls, trace: "Trace") -> "PreparedTrace":
        opcode_of = RECORD_OPCODES
        ops = [[(opcode_of.get(type(record), OP_UNKNOWN), record)
                for record in rank_trace.records]
               for rank_trace in trace.ranks]
        return cls(ops=ops)


@dataclass
class RankTrace:
    """The ordered record list of one MPI process."""

    rank: int
    records: List[Record] = field(default_factory=list)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    # -- aggregate views -------------------------------------------------
    def total_instructions(self) -> float:
        """Instructions over all computation bursts of this rank."""
        return sum(r.instructions for r in self.records if isinstance(r, CpuBurst))

    def bytes_sent(self) -> int:
        return sum(r.size for r in self.records if isinstance(r, SendRecord))

    def bytes_received(self) -> int:
        return sum(r.size for r in self.records if isinstance(r, RecvRecord))

    def count(self, record_type: Type[Record]) -> int:
        """Number of records of the given type."""
        return sum(1 for r in self.records if isinstance(r, record_type))

    def sends(self) -> List[SendRecord]:
        return [r for r in self.records if isinstance(r, SendRecord)]

    def recvs(self) -> List[RecvRecord]:
        return [r for r in self.records if isinstance(r, RecvRecord)]

    def collectives(self) -> List[CollectiveRecord]:
        return [r for r in self.records if isinstance(r, CollectiveRecord)]

    def bursts(self) -> List[CpuBurst]:
        return [r for r in self.records if isinstance(r, CpuBurst)]

    def waits(self) -> List[WaitRecord]:
        return [r for r in self.records if isinstance(r, WaitRecord)]

    def to_dict(self) -> Dict[str, Any]:
        return {"rank": self.rank, "records": [r.to_dict() for r in self.records]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RankTrace":
        return cls(rank=int(data["rank"]),
                   records=[Record.from_dict(r) for r in data.get("records", [])])


@dataclass
class Trace:
    """A complete application trace: one :class:`RankTrace` per process."""

    ranks: List[RankTrace]
    mips: float = DEFAULT_MIPS
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.ranks:
            raise TraceFormatError("a trace must contain at least one rank")
        expected = list(range(len(self.ranks)))
        actual = [rank_trace.rank for rank_trace in self.ranks]
        if actual != expected:
            raise TraceFormatError(
                f"rank traces must be numbered 0..N-1 in order, got {actual}")
        if self.mips <= 0:
            raise TraceFormatError(f"MIPS rate must be positive, got {self.mips!r}")

    @property
    def num_ranks(self) -> int:
        return len(self.ranks)

    def __getitem__(self, rank: int) -> RankTrace:
        return self.ranks[rank]

    def __iter__(self) -> Iterator[RankTrace]:
        return iter(self.ranks)

    # -- aggregate views -------------------------------------------------
    def total_instructions(self) -> float:
        return sum(rank_trace.total_instructions() for rank_trace in self.ranks)

    def total_bytes(self) -> int:
        return sum(rank_trace.bytes_sent() for rank_trace in self.ranks)

    def total_messages(self) -> int:
        return sum(rank_trace.count(SendRecord) for rank_trace in self.ranks)

    def describe(self) -> Dict[str, Any]:
        """A small summary used by the CLI and the reports."""
        return {
            "name": self.metadata.get("name", "unknown"),
            "num_ranks": self.num_ranks,
            "mips": self.mips,
            "total_instructions": self.total_instructions(),
            "total_bytes": self.total_bytes(),
            "total_messages": self.total_messages(),
            "records": sum(len(rank_trace) for rank_trace in self.ranks),
        }

    # -- replay preparation -------------------------------------------------
    def prepared(self) -> PreparedTrace:
        """The replay-ready (opcode-tagged) form of this trace, cached.

        The first call compiles the record lists; later calls -- e.g. every
        further platform point of a sweep -- return the cached object.  The
        cache lives on the :class:`Trace` instance (records are never
        mutated after construction), so any executor or worker that keeps a
        trace alive reuses its preparation for free.
        """
        prepared = getattr(self, "_prepared", None)
        if prepared is None:
            prepared = PreparedTrace.compile(self)
            self._prepared = prepared
        return prepared

    # -- (de)serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "mips": self.mips,
            "metadata": dict(self.metadata),
            "ranks": [rank_trace.to_dict() for rank_trace in self.ranks],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Trace":
        return cls(
            ranks=[RankTrace.from_dict(r) for r in data.get("ranks", [])],
            mips=float(data.get("mips", DEFAULT_MIPS)),
            metadata=dict(data.get("metadata", {})))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace to a JSON file and return the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict()), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written with :meth:`save`."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise TraceFormatError(f"cannot read trace file {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path} is not a valid trace file: {exc}") from exc
        return cls.from_dict(data)

    def with_metadata(self, **updates: Any) -> "Trace":
        """A shallow copy of the trace with extra metadata entries."""
        merged = dict(self.metadata)
        merged.update(updates)
        return Trace(ranks=self.ranks, mips=self.mips, metadata=merged)
