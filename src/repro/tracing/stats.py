"""Trace statistics.

A compact profile of an (original or overlapped) trace: instruction counts,
message counts and volumes, per-peer traffic, burst-length and message-size
distributions.  The CLI uses it for ``trace``/``simulate`` summaries and the
benchmarks use it to report how much the overlap transformation expands a
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.tracing.records import CollectiveRecord, CpuBurst, RecvRecord, SendRecord, WaitRecord
from repro.tracing.trace import RankTrace, Trace


@dataclass
class RankProfile:
    """Per-rank summary of a trace."""

    rank: int
    instructions: float = 0.0
    bursts: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    collectives: int = 0
    waits: int = 0
    peers: Dict[int, int] = field(default_factory=dict)

    @property
    def mean_burst_instructions(self) -> float:
        return self.instructions / self.bursts if self.bursts else 0.0

    @property
    def mean_message_bytes(self) -> float:
        if not self.messages_sent:
            return 0.0
        return self.bytes_sent / self.messages_sent


@dataclass
class TraceProfile:
    """Whole-trace summary."""

    num_ranks: int
    ranks: List[RankProfile]
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def total_instructions(self) -> float:
        return sum(rank.instructions for rank in self.ranks)

    @property
    def total_messages(self) -> int:
        return sum(rank.messages_sent for rank in self.ranks)

    @property
    def total_bytes(self) -> int:
        return sum(rank.bytes_sent for rank in self.ranks)

    @property
    def total_records(self) -> int:
        return sum(rank.bursts + rank.messages_sent + rank.messages_received
                   + rank.collectives + rank.waits for rank in self.ranks)

    def communication_matrix(self) -> List[List[int]]:
        """Bytes sent from every rank to every rank."""
        matrix = [[0] * self.num_ranks for _ in range(self.num_ranks)]
        for rank in self.ranks:
            for peer, volume in rank.peers.items():
                matrix[rank.rank][peer] += volume
        return matrix

    def compute_to_communication_ratio(self, mips: float = 1000.0,
                                       bandwidth_mbps: float = 250.0) -> float:
        """First-order compute/communication time ratio of the traced run."""
        compute_seconds = self.total_instructions / (mips * 1.0e6)
        bandwidth = bandwidth_mbps * 1.0e6
        communication_seconds = self.total_bytes / bandwidth if bandwidth else 0.0
        if communication_seconds == 0:
            return float("inf")
        return compute_seconds / communication_seconds


def profile_rank(rank_trace: RankTrace) -> RankProfile:
    """Profile a single rank trace."""
    profile = RankProfile(rank=rank_trace.rank)
    for record in rank_trace:
        if isinstance(record, CpuBurst):
            profile.bursts += 1
            profile.instructions += record.instructions
        elif isinstance(record, SendRecord):
            profile.messages_sent += 1
            profile.bytes_sent += record.size
            profile.peers[record.dst] = profile.peers.get(record.dst, 0) + record.size
        elif isinstance(record, RecvRecord):
            profile.messages_received += 1
            profile.bytes_received += record.size
        elif isinstance(record, CollectiveRecord):
            profile.collectives += 1
        elif isinstance(record, WaitRecord):
            profile.waits += 1
    return profile


def profile_trace(trace: Trace) -> TraceProfile:
    """Profile a whole trace."""
    return TraceProfile(
        num_ranks=trace.num_ranks,
        ranks=[profile_rank(rank_trace) for rank_trace in trace],
        metadata=dict(trace.metadata))


def expansion_report(original: Trace, overlapped: Trace) -> Dict[str, float]:
    """How much the overlap transformation expanded the trace.

    Useful to reason about the cost of the mechanism itself: the number of
    point-to-point operations grows by roughly the chunk count while the
    payload bytes stay identical.
    """
    original_profile = profile_trace(original)
    overlapped_profile = profile_trace(overlapped)
    return {
        "original_records": original_profile.total_records,
        "overlapped_records": overlapped_profile.total_records,
        "record_expansion": (overlapped_profile.total_records
                             / max(1, original_profile.total_records)),
        "original_messages": original_profile.total_messages,
        "overlapped_messages": overlapped_profile.total_messages,
        "message_expansion": (overlapped_profile.total_messages
                              / max(1, original_profile.total_messages)),
        "bytes_unchanged": original_profile.total_bytes == overlapped_profile.total_bytes,
    }
