"""The programming interface application models run against.

A :class:`RankContext` is handed to the ``run`` method of an application
model once per rank.  It exposes a compute/load/store API plus a small MPI
subset (point-to-point, non-blocking operations and the common collectives).
All calls are forwarded to the per-rank tracer.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.errors import TracingError
from repro.mpi.datatypes import Datatype, DOUBLE
from repro.tracing.buffers import Buffer, BufferRegistry
from repro.tracing.tracer import RankTracer


class RequestHandle:
    """Opaque handle returned by non-blocking operations."""

    __slots__ = ("request_id", "kind")

    def __init__(self, request_id: int, kind: str):
        self.request_id = request_id
        self.kind = kind

    def __repr__(self) -> str:
        return f"RequestHandle({self.kind}, id={self.request_id})"


class RankContext:
    """Execution context of one rank of an application model."""

    def __init__(self, rank: int, num_ranks: int, tracer: RankTracer):
        self._rank = rank
        self._num_ranks = num_ranks
        self._tracer = tracer
        self._buffers = BufferRegistry()

    # -- identity -----------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank."""
        return self._rank

    @property
    def num_ranks(self) -> int:
        """Size of the (world) communicator."""
        return self._num_ranks

    # -- memory ---------------------------------------------------------------
    def buffer(self, name: str, size: int) -> Buffer:
        """Declare (or fetch) a communication buffer of ``size`` bytes."""
        return self._buffers.get_or_create(name, size)

    def compute(self, instructions: float) -> None:
        """Execute ``instructions`` of computation."""
        self._tracer.compute(instructions)

    def write(self, buffer: Buffer, lo: float = 0.0, hi: float = 1.0) -> None:
        """Store into the fraction ``[lo, hi)`` of ``buffer``."""
        self._tracer.write(buffer, lo, hi)

    def read(self, buffer: Buffer, lo: float = 0.0, hi: float = 1.0) -> None:
        """Load from the fraction ``[lo, hi)`` of ``buffer``."""
        self._tracer.read(buffer, lo, hi)

    def compute_producing(self, buffer: Buffer, instructions: float,
                          segments: int = 8, start: float = 0.0,
                          end: float = 1.0) -> None:
        """Compute while progressively producing ``buffer``.

        The burst is divided into ``segments`` equal pieces; after each piece
        the corresponding slice of ``[start, end)`` of the buffer is written.
        This models a computation whose output is finalised progressively
        (an *ideal* producer in the paper's terminology), which is exactly
        what restructured code would look like.
        """
        self._check_segments(segments)
        span = end - start
        piece = instructions / segments
        for index in range(segments):
            self._tracer.compute(piece)
            lo = start + span * index / segments
            hi = start + span * (index + 1) / segments
            self._tracer.write(buffer, lo, hi)

    def compute_consuming(self, buffer: Buffer, instructions: float,
                          segments: int = 8, start: float = 0.0,
                          end: float = 1.0) -> None:
        """Compute while progressively consuming ``buffer`` (reads first)."""
        self._check_segments(segments)
        span = end - start
        piece = instructions / segments
        for index in range(segments):
            lo = start + span * index / segments
            hi = start + span * (index + 1) / segments
            self._tracer.read(buffer, lo, hi)
            self._tracer.compute(piece)

    # -- point-to-point --------------------------------------------------------
    def send(self, dst: int, buffer: Optional[Buffer] = None,
             size: Optional[int] = None, tag: int = 0) -> None:
        """Blocking send of ``buffer`` (or ``size`` bytes) to ``dst``."""
        self._tracer.send(dst, self._size_of(buffer, size), tag=tag,
                          buffer=buffer, blocking=True)

    def recv(self, src: int, buffer: Optional[Buffer] = None,
             size: Optional[int] = None, tag: int = 0) -> None:
        """Blocking receive from ``src`` into ``buffer``."""
        self._tracer.recv(src, self._size_of(buffer, size), tag=tag,
                          buffer=buffer, blocking=True)

    def isend(self, dst: int, buffer: Optional[Buffer] = None,
              size: Optional[int] = None, tag: int = 0) -> RequestHandle:
        """Non-blocking send; complete it with :meth:`wait`."""
        request = self._tracer.send(dst, self._size_of(buffer, size), tag=tag,
                                    buffer=buffer, blocking=False)
        return RequestHandle(request, "isend")

    def irecv(self, src: int, buffer: Optional[Buffer] = None,
              size: Optional[int] = None, tag: int = 0) -> RequestHandle:
        """Non-blocking receive; complete it with :meth:`wait`."""
        request = self._tracer.recv(src, self._size_of(buffer, size), tag=tag,
                                    buffer=buffer, blocking=False)
        return RequestHandle(request, "irecv")

    def wait(self, requests: Union[RequestHandle, Iterable[RequestHandle]]) -> None:
        """Wait for one or several non-blocking requests."""
        if isinstance(requests, RequestHandle):
            requests = [requests]
        ids: List[int] = []
        for handle in requests:
            if not isinstance(handle, RequestHandle):
                raise TracingError(f"wait() expects RequestHandle, got {handle!r}")
            ids.append(handle.request_id)
        self._tracer.wait(ids)

    def waitall(self, requests: Sequence[RequestHandle]) -> None:
        """Alias of :meth:`wait` for readability in application models."""
        self.wait(list(requests))

    def sendrecv(self, dst: int, send_buffer: Buffer, src: int,
                 recv_buffer: Buffer, tag: int = 0) -> None:
        """Combined exchange implemented as isend + recv + wait."""
        request = self.isend(dst, send_buffer, tag=tag)
        self.recv(src, recv_buffer, tag=tag)
        self.wait(request)

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> None:
        self._tracer.collective("barrier")

    def bcast(self, count: int = 1, datatype: Datatype = DOUBLE, root: int = 0) -> None:
        self._tracer.collective("bcast", size=count * datatype.size, root=root)

    def reduce(self, count: int = 1, datatype: Datatype = DOUBLE, root: int = 0) -> None:
        self._tracer.collective("reduce", size=count * datatype.size, root=root)

    def allreduce(self, count: int = 1, datatype: Datatype = DOUBLE) -> None:
        self._tracer.collective("allreduce", size=count * datatype.size)

    def gather(self, count: int = 1, datatype: Datatype = DOUBLE, root: int = 0) -> None:
        self._tracer.collective("gather", size=count * datatype.size, root=root)

    def allgather(self, count: int = 1, datatype: Datatype = DOUBLE) -> None:
        self._tracer.collective("allgather", size=count * datatype.size)

    def scatter(self, count: int = 1, datatype: Datatype = DOUBLE, root: int = 0) -> None:
        self._tracer.collective("scatter", size=count * datatype.size, root=root)

    def alltoall(self, count: int = 1, datatype: Datatype = DOUBLE) -> None:
        self._tracer.collective("alltoall", size=count * datatype.size)

    # -- internals ------------------------------------------------------------
    @staticmethod
    def _check_segments(segments: int) -> None:
        if segments < 1:
            raise TracingError(f"segments must be >= 1, got {segments!r}")

    @staticmethod
    def _size_of(buffer: Optional[Buffer], size: Optional[int]) -> int:
        if buffer is not None:
            if size is not None and int(size) != buffer.size:
                raise TracingError(
                    f"explicit size {size} does not match buffer size {buffer.size}")
            return buffer.size
        if size is None:
            raise TracingError("either a buffer or an explicit size is required")
        return int(size)
