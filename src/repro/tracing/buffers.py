"""Communication-buffer handles.

A :class:`Buffer` identifies a region of application memory that is used as
the payload of point-to-point messages.  The tracer tracks stores and loads
to buffers; the buffer itself only carries identity and size.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import TracingError


class Buffer:
    """A named communication buffer of a fixed size in bytes."""

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: int):
        if not name:
            raise TracingError("buffer name must be non-empty")
        if size <= 0:
            raise TracingError(f"buffer size must be positive, got {size!r}")
        self.name = name
        self.size = int(size)

    def __repr__(self) -> str:
        return f"Buffer({self.name!r}, size={self.size})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Buffer)
                and other.name == self.name and other.size == self.size)

    def __hash__(self) -> int:
        return hash((self.name, self.size))


class BufferRegistry:
    """Per-rank registry so a buffer name maps to a single size."""

    def __init__(self) -> None:
        self._buffers: Dict[str, Buffer] = {}

    def get_or_create(self, name: str, size: int) -> Buffer:
        """Return the buffer called ``name``, creating it on first use.

        Re-declaring an existing buffer with a different size is an error: the
        tracer identifies buffers by name, so a silent size change would
        corrupt the production/consumption bookkeeping.
        """
        existing = self._buffers.get(name)
        if existing is not None:
            if existing.size != int(size):
                raise TracingError(
                    f"buffer {name!r} re-declared with size {size} "
                    f"(previously {existing.size})")
            return existing
        buffer = Buffer(name, size)
        self._buffers[name] = buffer
        return buffer

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def __getitem__(self, name: str) -> Buffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise TracingError(f"unknown buffer {name!r}") from None

    def __len__(self) -> int:
        return len(self._buffers)
