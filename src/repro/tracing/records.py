"""Trace records.

The tracing tool emits, per rank, an ordered list of records of two kinds
(the same two kinds the paper describes for the non-overlapped trace):

* *computation records* (:class:`CpuBurst`) specifying the length of a
  computation burst in instructions, and
* *communication records* (:class:`SendRecord`, :class:`RecvRecord`,
  :class:`WaitRecord`, :class:`CollectiveRecord`) specifying the message or
  collective parameters.

Point-to-point records additionally carry the *production* / *consumption*
annotations -- the memory-access events the tracer observed on the message
buffer -- which the overlap transformation (:mod:`repro.core.overlap`) uses
to place the partial transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import TraceFormatError

#: Names of the collective operations the simulator models.
COLLECTIVE_OPERATIONS = (
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
)


@dataclass
class AccessEvent:
    """A load or store observed on a message buffer.

    ``burst_index`` is the index (in the rank's record list) of the
    :class:`CpuBurst` during which the access happened, ``offset`` is the
    instruction offset from the start of that burst, and ``lo``/``hi``
    delimit the touched fraction of the message buffer (``0 <= lo < hi <= 1``).
    """

    burst_index: int
    offset: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.lo < self.hi <= 1.0 + 1e-12):
            raise TraceFormatError(
                f"invalid access range [{self.lo}, {self.hi})")
        if self.offset < 0:
            raise TraceFormatError(f"negative access offset {self.offset}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "burst_index": self.burst_index,
            "offset": self.offset,
            "lo": self.lo,
            "hi": self.hi,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AccessEvent":
        return cls(burst_index=int(data["burst_index"]), offset=float(data["offset"]),
                   lo=float(data["lo"]), hi=float(data["hi"]))


@dataclass
class Record:
    """Base class of all trace records."""

    #: Discriminator used by (de)serialisation; overridden by subclasses.
    kind = "record"

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Record":
        kind = data.get("kind")
        try:
            factory = _RECORD_KINDS[kind]
        except KeyError:
            raise TraceFormatError(f"unknown record kind {kind!r}") from None
        return factory(data)


@dataclass
class CpuBurst(Record):
    """A computation burst measured in instructions."""

    instructions: float
    kind = "cpu"

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise TraceFormatError(
                f"negative burst length: {self.instructions}")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "instructions": self.instructions}


@dataclass
class SendRecord(Record):
    """A point-to-point send.

    ``production`` lists the store events observed on the message buffer
    since its previous send; chunk production times are derived from it by
    the overlap transformation.  ``pair_seq`` is the ordinal of this message
    among all messages this rank sends to ``dst`` with ``tag`` -- the
    matching receive carries the same ordinal, which gives both sides a
    consistent message identity without any global coordination.
    """

    dst: int
    size: int
    tag: int = 0
    blocking: bool = True
    request: Optional[int] = None
    buffer: Optional[str] = None
    pair_seq: int = 0
    production: List[AccessEvent] = field(default_factory=list)
    kind = "send"

    def __post_init__(self) -> None:
        if self.size < 0:
            raise TraceFormatError(f"negative message size: {self.size}")
        if self.dst < 0:
            raise TraceFormatError(f"negative destination rank: {self.dst}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "dst": self.dst,
            "size": self.size,
            "tag": self.tag,
            "blocking": self.blocking,
            "request": self.request,
            "buffer": self.buffer,
            "pair_seq": self.pair_seq,
            "production": [event.to_dict() for event in self.production],
        }


@dataclass
class RecvRecord(Record):
    """A point-to-point receive.

    ``consumption`` lists the load events observed on the message buffer in
    the computation burst that follows the receive (or the wait, for a
    non-blocking receive).
    """

    src: int
    size: int
    tag: int = 0
    blocking: bool = True
    request: Optional[int] = None
    buffer: Optional[str] = None
    pair_seq: int = 0
    consumption: List[AccessEvent] = field(default_factory=list)
    kind = "recv"

    def __post_init__(self) -> None:
        if self.size < 0:
            raise TraceFormatError(f"negative message size: {self.size}")
        if self.src < 0:
            raise TraceFormatError(f"negative source rank: {self.src}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "src": self.src,
            "size": self.size,
            "tag": self.tag,
            "blocking": self.blocking,
            "request": self.request,
            "buffer": self.buffer,
            "pair_seq": self.pair_seq,
            "consumption": [event.to_dict() for event in self.consumption],
        }


@dataclass
class WaitRecord(Record):
    """A wait on one or more non-blocking requests."""

    requests: List[int] = field(default_factory=list)
    kind = "wait"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "requests": list(self.requests)}


@dataclass
class CollectiveRecord(Record):
    """A collective operation entered by this rank."""

    operation: str
    size: int = 0
    root: int = 0
    comm_size: int = 0
    kind = "collective"

    def __post_init__(self) -> None:
        if self.operation not in COLLECTIVE_OPERATIONS:
            raise TraceFormatError(
                f"unknown collective operation {self.operation!r}")
        if self.size < 0:
            raise TraceFormatError(f"negative collective size: {self.size}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "operation": self.operation,
            "size": self.size,
            "root": self.root,
            "comm_size": self.comm_size,
        }


def _cpu_from_dict(data: Dict[str, Any]) -> CpuBurst:
    return CpuBurst(instructions=float(data["instructions"]))


def _send_from_dict(data: Dict[str, Any]) -> SendRecord:
    return SendRecord(
        dst=int(data["dst"]), size=int(data["size"]), tag=int(data.get("tag", 0)),
        blocking=bool(data.get("blocking", True)),
        request=data.get("request"), buffer=data.get("buffer"),
        pair_seq=int(data.get("pair_seq", 0)),
        production=[AccessEvent.from_dict(e) for e in data.get("production", [])])


def _recv_from_dict(data: Dict[str, Any]) -> RecvRecord:
    return RecvRecord(
        src=int(data["src"]), size=int(data["size"]), tag=int(data.get("tag", 0)),
        blocking=bool(data.get("blocking", True)),
        request=data.get("request"), buffer=data.get("buffer"),
        pair_seq=int(data.get("pair_seq", 0)),
        consumption=[AccessEvent.from_dict(e) for e in data.get("consumption", [])])


def _wait_from_dict(data: Dict[str, Any]) -> WaitRecord:
    return WaitRecord(requests=list(data.get("requests", [])))


def _collective_from_dict(data: Dict[str, Any]) -> CollectiveRecord:
    return CollectiveRecord(
        operation=data["operation"], size=int(data.get("size", 0)),
        root=int(data.get("root", 0)), comm_size=int(data.get("comm_size", 0)))


_RECORD_KINDS = {
    "cpu": _cpu_from_dict,
    "send": _send_from_dict,
    "recv": _recv_from_dict,
    "wait": _wait_from_dict,
    "collective": _collective_from_dict,
}
