"""The instruction-count time model.

Following the paper, the tracing tool measures time as the number of
instructions executed in computation bursts, and that number is scaled by the
average MIPS rate observed in a real run to obtain seconds.  The model
deliberately ignores MPI-routine overhead, cache/TLB misses and CPU
preemption; it can be extended by scaling the MIPS rate (the
``relative_cpu_speed`` knob of the Dimemas platform plays that role during
replay).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Default MIPS rate used when an application model does not specify one.
#: 1000 MIPS (one giga-instruction per second) is representative of a single
#: core of the 2010-era machines the paper targets.
DEFAULT_MIPS = 1000.0


@dataclass(frozen=True)
class TimeBase:
    """Converts instruction counts to seconds through a MIPS rate."""

    mips: float = DEFAULT_MIPS

    def __post_init__(self) -> None:
        if self.mips <= 0:
            raise ConfigurationError(f"MIPS rate must be positive, got {self.mips!r}")

    @property
    def instructions_per_second(self) -> float:
        return self.mips * 1.0e6

    def seconds(self, instructions: float, relative_cpu_speed: float = 1.0) -> float:
        """Seconds taken by ``instructions`` at this MIPS rate.

        ``relative_cpu_speed`` scales the processor (Dimemas semantics: 2.0
        means a CPU twice as fast as the traced one).
        """
        if relative_cpu_speed <= 0:
            raise ConfigurationError(
                f"relative CPU speed must be positive, got {relative_cpu_speed!r}")
        if instructions < 0:
            raise ConfigurationError(f"negative instruction count: {instructions!r}")
        return instructions / (self.instructions_per_second * relative_cpu_speed)

    def instructions(self, seconds: float, relative_cpu_speed: float = 1.0) -> float:
        """Inverse of :meth:`seconds`."""
        if seconds < 0:
            raise ConfigurationError(f"negative duration: {seconds!r}")
        return seconds * self.instructions_per_second * relative_cpu_speed
