"""The tracing tool substrate.

In the paper the tracing tool is built on Valgrind: every MPI process runs on
its own Valgrind virtual machine, MPI calls are wrapped, and loads/stores on
communication buffers are tracked so the tool knows *when* every chunk of a
message is produced (last store before the send) and consumed (first load
after the receive).  Timestamps are instruction counts scaled by an average
MIPS rate.

This package reproduces that functionality for synthetic application models:

* :mod:`repro.tracing.records` -- the Dimemas-style trace records plus the
  production/consumption annotations;
* :mod:`repro.tracing.buffers` -- communication-buffer handles;
* :mod:`repro.tracing.tracer`  -- the per-rank tracing tool;
* :mod:`repro.tracing.context` -- the API application models program against
  (compute / load / store / MPI calls);
* :mod:`repro.tracing.machine` -- the virtual machine that runs an
  application model on every rank and assembles the full trace;
* :mod:`repro.tracing.trace`   -- trace containers and (de)serialisation;
* :mod:`repro.tracing.timebase` -- the instruction/MIPS time model.
"""

from repro.tracing.buffers import Buffer
from repro.tracing.context import RankContext
from repro.tracing.machine import TracingVirtualMachine
from repro.tracing.records import (
    AccessEvent,
    CollectiveRecord,
    CpuBurst,
    RecvRecord,
    Record,
    SendRecord,
    WaitRecord,
)
from repro.tracing.trace import RankTrace, Trace
from repro.tracing.tracer import RankTracer
from repro.tracing.timebase import TimeBase

__all__ = [
    "AccessEvent",
    "Buffer",
    "CollectiveRecord",
    "CpuBurst",
    "RankContext",
    "RankTrace",
    "RankTracer",
    "Record",
    "RecvRecord",
    "SendRecord",
    "TimeBase",
    "Trace",
    "TracingVirtualMachine",
    "WaitRecord",
]
