"""The tracing virtual machine.

The paper runs every MPI process on its own Valgrind virtual machine.  Here
the virtual machine executes the application model once per rank (the models
are SPMD and data-independent, so ranks can be traced one after another) and
assembles the per-rank traces into a :class:`~repro.tracing.trace.Trace`.
Optionally the resulting trace is validated by the cross-rank matching
validator so that an inconsistent application model is rejected at tracing
time rather than deadlocking the replay simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import TracingError
from repro.tracing.context import RankContext
from repro.tracing.timebase import DEFAULT_MIPS
from repro.tracing.trace import Trace
from repro.tracing.tracer import RankTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.apps.base import ApplicationModel


class TracingVirtualMachine:
    """Runs application models and produces annotated traces."""

    def __init__(self, validate: bool = True):
        self.validate = validate

    def trace(self, app: "ApplicationModel") -> Trace:
        """Trace ``app`` and return the annotated (original) trace."""
        num_ranks = app.num_ranks
        if num_ranks < 2:
            raise TracingError(
                f"application models need at least 2 ranks, got {num_ranks}")
        rank_traces = []
        for rank in range(num_ranks):
            tracer = RankTracer(rank, num_ranks)
            context = RankContext(rank, num_ranks, tracer)
            app.run(context)
            rank_traces.append(tracer.finalize())
        mips = getattr(app, "mips", DEFAULT_MIPS)
        trace = Trace(ranks=rank_traces, mips=mips, metadata=app.describe())
        if self.validate:
            # Imported lazily to avoid a package import cycle.
            from repro.mpi.validation import MatchingValidator
            MatchingValidator().validate(trace)
        return trace
