"""repro -- reproduction of the ISPASS 2010 overlap-of-communication-and-computation study.

The package is organised as a set of substrates plus the paper's core
contribution:

``repro.des``
    A small discrete-event-simulation kernel (events, generator-based
    processes, resources) on which the replay simulator is built.
``repro.tracing``
    The tracing tool: a deterministic per-rank virtual machine that executes
    application models and records instruction-counted computation bursts,
    communication records and the memory-access (production/consumption)
    patterns on communication buffers.
``repro.mpi``
    Synthetic MPI abstractions: communicators, datatypes, requests,
    topologies and a cross-rank trace-matching validator.
``repro.apps``
    Parameterised synthetic application models (NAS BT, NAS CG, Sweep3D,
    POP, Alya, SPECFEM and a Sancho-style synthetic loop).
``repro.dimemas``
    The trace-driven network replay simulator with the Dimemas machine model
    (relative CPU speed, latency, bandwidth, buses, links, eager/rendezvous,
    collective cost models).
``repro.paraver``
    State/communication timelines, ``.prv`` export, ASCII Gantt rendering and
    timeline comparison.
``repro.core``
    The overlap study itself: chunking policies, computation-pattern models,
    overlap mechanisms, the trace transformation that produces the overlapped
    traces, the study environment facade, analysis and parameter sweeps.
``repro.experiments``
    The unified declarative experiment API: one serializable
    :class:`ExperimentSpec` (built fluently or loaded from JSON/TOML), one
    runner expanding the full apps x platform-grid x variants cross-product,
    one typed :class:`ExperimentResult`.
"""

from repro._version import __version__
from repro.core.environment import OverlapStudyEnvironment
from repro.core.mechanisms import OverlapMechanism
from repro.core.patterns import ComputationPattern
from repro.dimemas.platform import Platform
from repro.dimemas.simulator import DimemasSimulator
from repro.experiments import Experiment, ExperimentResult, ExperimentSpec, run_experiment
from repro.tracing.machine import TracingVirtualMachine

__all__ = [
    "__version__",
    "ComputationPattern",
    "DimemasSimulator",
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "OverlapMechanism",
    "OverlapStudyEnvironment",
    "Platform",
    "TracingVirtualMachine",
    "run_experiment",
]
